"""Bottom-up search-based circuit synthesis (paper section II-B).

:class:`SynthesisSearch` is the QSearch-lineage workload the fast
instantiation engine exists to serve: starting from a layer generator's
root template, it keeps a frontier of candidate templates ordered by an
A* score (instantiated infidelity plus gate-count cost), expands the
best one, and instantiates each new candidate against the target until
one fits to the success threshold.

The instantiation inner loop is where the paper's machinery composes:

* every candidate's multi-start fit runs through one engine with
  ``strategy="auto"`` — at the default 8 starts that is a single
  vectorized :class:`~repro.tnvm.vm.BatchedTNVM` sweep per LM round
  rather than 8 scalar passes;
* engines come from a structure-keyed
  :class:`~repro.instantiation.EnginePool`, so the AOT compile of a
  template shape is paid once per shape, not once per candidate — and
  frontier candidates that share a template shape collapse onto the
  same engine (identical-shape duplicates are not re-instantiated at
  all, via the visited set);
* candidates are evaluated in *rounds* — every successor of up to
  ``expansion_width`` frontier expansions forms one batch handed to a
  :class:`~repro.synthesis.executor.CandidateExecutor`, so with
  ``workers > 1`` the whole round runs concurrently on processes that
  rehydrate the pool's already-compiled engines.  Per-candidate RNG
  seeds derive from the candidate's structure key, so results are
  bit-identical across worker counts and evaluation orders.
"""

from __future__ import annotations

import contextlib
import heapq
import time
from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..checkpoint import (
    CheckpointStore,
    PassCheckpointer,
    config_fingerprint,
    load_resume_state,
    target_fingerprint,
)
from ..circuit.circuit import QuditCircuit
from ..instantiation.cost import as_target_array
from ..instantiation.instantiater import SUCCESS_THRESHOLD
from ..instantiation.lm import LMOptions
from ..instantiation.pool import EnginePool
from ..tensornet.contract import OutputContract
from ..testing.faults import maybe_fault
from ..utils.statevector import Statevector
from .executor import CandidateExecutor, FitJob, candidate_seed, make_executor
from .layers import LayerGenerator, QSearchLayerGenerator
from .result import SynthesisResult

__all__ = ["SynthesisSearch", "infer_radices"]


def _resolve_pool(
    pool: EnginePool | None,
    success_threshold: float,
    strategy: str | None,
    precision: str | None,
    lm_options: LMOptions | None,
    backend: str | None = None,
) -> EnginePool:
    """The engine pool for a synthesis pass: the injected one, after
    rejecting silently-conflicting engine options (pooled engines are
    built from the *pool's* settings, so per-pass strategy/precision/
    lm_options/backend would be ignored, and a pool threshold looser
    than the pass threshold would make the engines' multi-start
    short-circuit stop above the pass's bar), or a private pool built
    from the pass settings."""
    if pool is not None:
        if (
            strategy is not None
            or precision is not None
            or lm_options is not None
            or backend is not None
        ):
            raise ValueError(
                "strategy/precision/lm_options/backend are engine settings; "
                "when injecting an EnginePool, configure them on the pool "
                "instead"
            )
        if pool.success_threshold > success_threshold:
            raise ValueError(
                f"pool.success_threshold ({pool.success_threshold:g}) is "
                f"looser than the requested success_threshold "
                f"({success_threshold:g}); pooled engines would "
                "short-circuit before reaching it"
            )
        return pool
    return EnginePool(
        strategy=strategy if strategy is not None else "auto",
        precision=precision if precision is not None else "f64",
        success_threshold=success_threshold,
        lm_options=lm_options,
        backend=backend if backend is not None else "auto",
    )


class _PassCounters:
    """Per-pass telemetry counters for one synthesis/resynthesis run.

    Each field is a child of the process-global registry counter of
    the same name, so a pass reads its own exact values (the
    deterministic numbers that populate :class:`SynthesisResult`)
    while BENCH/trace artifacts see whole-process aggregates.
    ``expanded`` counts frontier expansions for the search and
    examined deletion candidates for the resynthesizer.
    """

    __slots__ = ("calls", "expanded", "busy", "eval_wall")

    def __init__(self):
        registry = telemetry.metrics()
        self.calls = registry.counter("synthesis.instantiation_calls").child()
        self.expanded = registry.counter("synthesis.nodes_expanded").child()
        self.busy = registry.counter("synthesis.busy_seconds").child()
        self.eval_wall = registry.counter("synthesis.eval_wall_seconds").child()


def _run_round(
    executor: CandidateExecutor,
    jobs: list[FitJob],
    counters: _PassCounters,
    round_timeout: float | None = None,
):
    """Evaluate one round of candidate fits and update the pass
    counters (shared by the search and resynthesis passes).

    ``calls`` counts engine invocations (constant candidates have
    nothing to optimize and are evaluated directly, without counting);
    ``busy``/``eval_wall`` feed the ``parallel_efficiency`` report.
    ``round_timeout`` bounds the whole round's wall clock: stragglers
    past it degrade to failed outcomes instead of stalling the pass.
    """
    with telemetry.tracer().span(
        "round", category="synthesize",
        jobs=len(jobs), workers=executor.workers,
    ):
        t0 = time.perf_counter()
        outcomes = executor.run(jobs, round_timeout=round_timeout)
        counters.eval_wall.add(time.perf_counter() - t0)
    for outcome in outcomes:
        counters.busy.add(outcome.busy_seconds)
        if outcome.engine_call:
            counters.calls.add()
    return outcomes


def _parallel_efficiency(
    executor: CandidateExecutor, counters: _PassCounters
) -> float | None:
    """Engine busy time over the ``workers x wall`` evaluation budget."""
    eval_wall = counters.eval_wall.value
    if eval_wall <= 0.0:
        return None
    return counters.busy.value / (executor.workers * eval_wall)


def infer_radices(dim: int) -> tuple[int, ...]:
    """Radices for a target dimension: qubits if ``dim`` is a power of
    two, qutrits if a power of three; anything else needs explicit
    radices from the caller."""
    for radix in (2, 3):
        n, d = 0, dim
        while d % radix == 0:
            d //= radix
            n += 1
        if d == 1 and n > 0:
            return (radix,) * n
    raise ValueError(
        f"cannot infer radices for dimension {dim}; pass radices="
    )


@dataclass
class _Node:
    """One frontier entry: an instantiated candidate template."""

    circuit: QuditCircuit
    params: np.ndarray
    infidelity: float
    layers: int


class SynthesisSearch:
    """Frontier-based bottom-up synthesis over a layer-generator grammar.

    ``heuristic`` selects the frontier order:

    * ``"astar"`` (default) — ``layers + heuristic_weight * infidelity``:
      greedy toward templates that already sit close to the target,
      biased toward fewer entangling blocks;
    * ``"dijkstra"`` — ``layers`` only: expands strictly by gate count,
      guaranteeing the first solution found uses the fewest entangling
      blocks the grammar allows (at the price of more expansions);
    * a callable ``f(infidelity, layers) -> float`` for custom orders.

    Budgets: ``max_layers`` caps template depth, ``max_expansions`` caps
    frontier pops, so a search on an unreachable target terminates with
    the best candidate found (``success=False``).

    Parallelism: every round pops up to ``expansion_width`` frontier
    nodes, and *all* their successors are evaluated as one batch
    through the candidate executor — ``workers`` processes when > 1.
    ``expansion_width`` (not ``workers``) defines the search
    trajectory, so any two runs with the same width return bit-identical
    results regardless of worker count; widen it (typically to the
    worker count or a small multiple of the grammar's branching factor)
    to give the executor enough concurrent candidates per round.

    Fault tolerance: worker crashes are retried (up to ``max_retries``
    per candidate) on a rebuilt pool — structure-keyed seeding makes
    the recovered result bit-identical to a fault-free run —
    ``job_timeout`` / ``round_timeout`` bound stragglers, and
    candidates that fail anyway (quarantined, timed out, non-finite)
    are excluded from the frontier rather than erroring the pass; the
    result's ``failed_candidates`` / ``retries`` / ``timed_out``
    fields report such degradation.

    Durability: with ``checkpoint_dir`` set, the pass snapshots its
    round-boundary state (frontier, visited set, best-so-far, base
    seed, counters) into a :class:`~repro.checkpoint.CheckpointStore`
    every ``checkpoint_every`` rounds and/or ``checkpoint_seconds``
    seconds, flushes a final snapshot on SIGTERM/SIGINT (then tears
    the pool down via the non-waiting abandon path and raises
    :class:`~repro.checkpoint.PreemptedError`), and resumes with
    ``synthesize(resume_from=...)``.  Because candidate seeds derive
    from structure keys, a resumed pass returns a result bit-identical
    (circuit, params, infidelity, call counts) to an uninterrupted
    run — only wall-clock and cache-hit accounting differ.
    """

    def __init__(
        self,
        layer_generator: LayerGenerator | None = None,
        success_threshold: float = SUCCESS_THRESHOLD,
        heuristic: str | object = "astar",
        heuristic_weight: float = 10.0,
        max_layers: int = 8,
        max_expansions: int = 256,
        starts: int = 8,
        strategy: str | None = None,
        precision: str | None = None,
        lm_options: LMOptions | None = None,
        pool: EnginePool | None = None,
        warm_start: bool = True,
        workers: int = 1,
        expansion_width: int = 1,
        executor: CandidateExecutor | None = None,
        backend: str | None = None,
        job_timeout: float | None = None,
        round_timeout: float | None = None,
        max_retries: int = 2,
        checkpoint_dir: str | None = None,
        checkpoint_every: int | None = 1,
        checkpoint_seconds: float | None = None,
        checkpoint_keep: int = 3,
    ):
        if not callable(heuristic) and heuristic not in ("astar", "dijkstra"):
            raise ValueError(
                "heuristic must be 'astar', 'dijkstra', or a callable"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if expansion_width < 1:
            raise ValueError("expansion_width must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if round_timeout is not None and round_timeout <= 0:
            raise ValueError("round_timeout must be positive (or None)")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        if checkpoint_seconds is not None and checkpoint_seconds <= 0:
            raise ValueError("checkpoint_seconds must be positive (or None)")
        if checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        self.layer_generator = layer_generator or QSearchLayerGenerator()
        self.success_threshold = success_threshold
        self.heuristic = heuristic
        self.heuristic_weight = heuristic_weight
        self.max_layers = max_layers
        self.max_expansions = max_expansions
        self.starts = starts
        self.warm_start = warm_start
        self.expansion_width = expansion_width
        #: Fault-tolerance budgets, threaded into every round's
        #: :class:`FitJob`\ s (per-job wall clock) and executor calls
        #: (per-round wall clock); ``None`` = unbounded, the default.
        self.job_timeout = job_timeout
        self.round_timeout = round_timeout
        self.max_retries = max_retries
        #: Durability knobs: where round-boundary snapshots go (``None``
        #: disables checkpointing), how often (rounds and/or seconds —
        #: whichever fires first), and how many snapshots the store
        #: retains for corrupt-latest fallback.
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_seconds = checkpoint_seconds
        self.checkpoint_keep = checkpoint_keep
        #: The engine pool persists across ``synthesize`` calls, so a
        #: search object reused for many targets pays each template
        #: shape's AOT compile once (the Listing 3 amortization).
        self.pool = _resolve_pool(
            pool, success_threshold, strategy, precision, lm_options, backend
        )
        if executor is not None and executor.pool is not self.pool:
            raise ValueError(
                "an injected executor must wrap the search's engine pool"
            )
        if (
            executor is not None
            and workers != 1
            and workers != executor.workers
        ):
            raise ValueError(
                f"workers={workers} conflicts with the injected "
                f"executor's {executor.workers} worker(s); pass one or "
                "the other"
            )
        self.workers = executor.workers if executor is not None else workers
        self._executor = executor
        self._owns_executor = executor is None

    @property
    def executor(self) -> CandidateExecutor:
        """The candidate executor (built lazily so serial searches and
        unpicklable process machinery never mix)."""
        if self._executor is None:
            self._executor = make_executor(
                self.pool,
                self.workers,
                max_retries=self.max_retries,
                job_timeout=self.job_timeout,
            )
        return self._executor

    def close(self) -> None:
        """Shut down worker processes this search created (no-op for
        serial searches and injected executors, which their owner
        closes)."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> SynthesisSearch:
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _priority(self, infidelity: float, layers: int) -> float:
        if callable(self.heuristic):
            return float(self.heuristic(infidelity, layers))
        if self.heuristic == "dijkstra":
            return float(layers)
        return layers + self.heuristic_weight * infidelity

    def _config_fingerprint(self) -> str:
        # Only trajectory-shaping knobs: worker count and checkpoint
        # cadence are excluded because results are bit-identical
        # across them.  A callable heuristic hashes by a placeholder
        # (its repr would embed a memory address and never match).
        return config_fingerprint(
            pass_kind="search",
            success_threshold=self.success_threshold,
            heuristic=(
                self.heuristic
                if isinstance(self.heuristic, str)
                else "<callable>"
            ),
            heuristic_weight=self.heuristic_weight,
            max_layers=self.max_layers,
            max_expansions=self.max_expansions,
            starts=self.starts,
            warm_start=self.warm_start,
            expansion_width=self.expansion_width,
            layer_generator=type(self.layer_generator).__name__,
        )

    def synthesize(
        self,
        target: np.ndarray | Statevector,
        radices: tuple[int, ...] | None = None,
        rng: np.random.Generator | int | None = None,
        resume_from: str | CheckpointStore | None = None,
        checkpoint_dir: str | None = None,
    ) -> SynthesisResult:
        """Search for a circuit implementing ``target`` up to global
        phase, to the configured success threshold.

        ``target`` is a ``(D, D)`` unitary (circuit synthesis) or a
        :class:`~repro.utils.Statevector` / 1-D amplitude vector
        (state preparation: every candidate is fitted through a
        ``COLUMN(0)``-contract engine whose dynamic section propagates
        the single column ``U(theta)|0>`` — never the full unitary).
        A ``Statevector`` supplies its own radices; both target types
        share the search's engine pool, where engines are keyed by
        (circuit structure, output contract), so column and
        full-unitary engines for the same shape coexist.

        ``checkpoint_dir`` overrides the constructor knob for this
        call (useful when one search object serves many targets —
        each target needs its own checkpoint directory).
        ``resume_from`` (a checkpoint directory or
        :class:`~repro.checkpoint.CheckpointStore`) restores the
        newest valid snapshot and continues — bit-identically — from
        its round boundary, checkpointing onward into the same store;
        ``rng`` is ignored on resume (the stored base seed governs).
        Resuming a finished pass returns the stored result without
        redoing any work.
        """
        t0 = time.perf_counter()
        if isinstance(target, Statevector) and radices is None:
            radices = target.radices
        target = as_target_array(target)
        if target.ndim == 2 and target.shape[0] != target.shape[1]:
            raise ValueError("target must be a square matrix")
        if target.ndim not in (1, 2):
            raise ValueError(
                "target must be a (D, D) unitary, a Statevector, or a "
                "1-D amplitude vector"
            )
        radices = (
            tuple(int(r) for r in radices)
            if radices is not None
            else infer_radices(target.shape[0])
        )
        dim = 1
        for r in radices:
            dim *= r
        if dim != target.shape[0]:
            raise ValueError(
                f"radices {radices} give dimension {dim}, target has "
                f"dimension {target.shape[0]}"
            )
        # State-prep rounds run column engines end-to-end; unitary
        # targets keep the default full contract.
        contract = (
            OutputContract.column(0) if target.ndim == 1 else None
        )
        rng = np.random.default_rng(rng)
        # One base seed per pass; every candidate derives its own seed
        # from this and its structure key, so results do not depend on
        # the order candidates are drawn or scheduled in.  A resume
        # below overwrites this with the stored seed.
        base_seed = int(rng.integers(2**63))

        target_fp = target_fingerprint(target, extra=(radices,))
        config_fp = self._config_fingerprint()
        directory = (
            checkpoint_dir
            if checkpoint_dir is not None
            else self.checkpoint_dir
        )
        store: CheckpointStore | None = None
        resume_payload: dict | None = None
        if resume_from is not None:
            store, payload, _ = load_resume_state(
                resume_from,
                kind="search",
                target=target_fp,
                config=config_fp,
                keep=self.checkpoint_keep,
            )
            if payload["complete"]:
                # The pass already finished: a no-op resume returning
                # the stored result, not a re-run.
                return payload["result"]
            resume_payload = payload
        elif directory is not None:
            store = CheckpointStore(directory, keep=self.checkpoint_keep)

        registry = telemetry.metrics()
        metrics0 = registry.snapshot()
        frontier_depth = registry.histogram("synthesis.frontier_depth")
        hits0, misses0 = self.pool.hits, self.pool.misses
        counters = _PassCounters()
        executor = self.executor
        round_index = 0
        resumed_from: int | None = None
        ck: PassCheckpointer | None = None
        if store is not None:
            ck = PassCheckpointer(
                store,
                kind="search",
                target=target_fp,
                config=config_fp,
                every_rounds=self.checkpoint_every,
                every_seconds=self.checkpoint_seconds,
                executor=executor,
            )
        pass_span = telemetry.tracer().span(
            "synthesize", category="synthesize",
            dim=int(target.shape[0]), workers=executor.workers,
        )

        def finish(node: _Node, success: bool) -> SynthesisResult:
            pass_span.set(
                success=success, expanded=counters.expanded.value
            )
            pass_span.__exit__(None, None, None)
            pass_metrics = telemetry.delta(metrics0, registry.snapshot())
            result = SynthesisResult(
                circuit=node.circuit,
                params=node.params,
                infidelity=node.infidelity,
                success=success,
                instantiation_calls=counters.calls.value,
                engine_cache_hits=self.pool.hits - hits0,
                engine_cache_misses=self.pool.misses - misses0,
                nodes_expanded=counters.expanded.value,
                wall_seconds=time.perf_counter() - t0,
                workers=executor.workers,
                parallel_efficiency=_parallel_efficiency(executor, counters),
                metrics=pass_metrics,
                failed_candidates=int(
                    pass_metrics.get("executor.failed_candidates", 0)
                ),
                retries=int(pass_metrics.get("executor.retries", 0)),
                timed_out=int(pass_metrics.get("executor.timeouts", 0)),
                resumed_from_round=resumed_from,
            )
            if ck is not None:
                ck.complete(round_index, result)
            return result

        def search_state() -> dict:
            # Everything a resume needs to replay the loop from this
            # round boundary: the heap is stored verbatim (it already
            # satisfies the heap invariant, so pops replay identically)
            # and counters are stored as totals, restored via add()
            # into the new process's child counters.
            return {
                "base_seed": base_seed,
                "tick": tick,
                "visited": visited,
                "frontier": frontier,
                "best": best,
                "counters": {
                    "calls": counters.calls.value,
                    "expanded": counters.expanded.value,
                    "busy": counters.busy.value,
                    "eval_wall": counters.eval_wall.value,
                },
            }

        with contextlib.ExitStack() as stack:
            if ck is not None:
                stack.enter_context(ck)
            if resume_payload is not None:
                state = resume_payload["state"]
                base_seed = state["base_seed"]
                tick = state["tick"]
                visited = state["visited"]
                frontier = state["frontier"]
                best = state["best"]
                round_index = resumed_from = int(resume_payload["round"])
                counters.calls.add(state["counters"]["calls"])
                counters.expanded.add(state["counters"]["expanded"])
                counters.busy.add(state["counters"]["busy"])
                counters.eval_wall.add(state["counters"]["eval_wall"])
            else:
                root_circuit = self.layer_generator.initial(radices)
                [root_outcome] = _run_round(
                    executor,
                    [
                        FitJob(
                            root_circuit,
                            target,
                            self.starts,
                            candidate_seed(
                                base_seed, root_circuit.structure_key()
                            ),
                            contract=contract,
                            timeout=self.job_timeout,
                        )
                    ],
                    counters,
                    round_timeout=self.round_timeout,
                )
                root = _Node(
                    root_circuit,
                    root_outcome.params,
                    root_outcome.infidelity,
                    0,
                )
                if root.infidelity <= self.success_threshold:
                    return finish(root, True)

                best = root
                visited = {root_circuit.structure_key()}
                tick = 0  # FIFO tiebreak keeps the heap deterministic
                # A failed root (quarantined/timed out: infinite
                # infidelity) still seeds the frontier — its successors
                # may fit fine — but failed *candidates* below never
                # re-enter it.
                frontier: list[tuple[float, int, _Node]] = [
                    (self._priority(root.infidelity, 0), tick, root)
                ]
            while frontier and counters.expanded.value < self.max_expansions:
                # Round boundary: the state is exactly "round_index
                # rounds completed", so a snapshot here replays no
                # finished work.  The fault point lets chaos tests
                # deliver a SIGTERM at a chosen round.
                maybe_fault("round", key=round_index)
                if ck is not None:
                    ck.round_boundary(round_index, search_state)
                frontier_depth.observe(len(frontier))
                # Assemble one round: up to expansion_width frontier
                # pops (bounded by the remaining expansion budget),
                # skipping nodes already at the depth cap.
                width = min(
                    self.expansion_width,
                    self.max_expansions - counters.expanded.value,
                )
                parents: list[_Node] = []
                while frontier and len(parents) < width:
                    _, _, node = heapq.heappop(frontier)
                    if node.layers >= self.max_layers:
                        continue
                    parents.append(node)
                if not parents:
                    break
                counters.expanded.add(len(parents))

                jobs: list[FitJob] = []
                meta: list[tuple[QuditCircuit, _Node]] = []
                for node in parents:
                    for child in self.layer_generator.successors(
                        node.circuit
                    ):
                        key = child.structure_key()
                        if key in visited:
                            continue  # template shape already instantiated
                        visited.add(key)
                        x0 = None
                        if (
                            self.warm_start
                            and child.num_params >= len(node.params)
                        ):
                            # Seed start 0 at the parent optimum, new
                            # gates at zero (identity for the default
                            # singles).
                            x0 = np.concatenate(
                                [
                                    node.params,
                                    np.zeros(
                                        child.num_params - len(node.params)
                                    ),
                                ]
                            )
                        jobs.append(
                            FitJob(
                                child,
                                target,
                                self.starts,
                                candidate_seed(base_seed, key),
                                x0,
                                contract=contract,
                                timeout=self.job_timeout,
                            )
                        )
                        meta.append((child, node))

                # The whole round evaluates as one batch (concurrently
                # when workers > 1); outcomes are then scanned in
                # deterministic job order, so the first success is the
                # same no matter how the batch was scheduled.
                outcomes = _run_round(
                    executor, jobs, counters, round_timeout=self.round_timeout
                )
                round_index += 1
                for (child, parent), outcome in zip(meta, outcomes):
                    if outcome.failed:
                        # Quarantined / timed-out / non-finite
                        # candidates never join the frontier: an
                        # infinite-infidelity node would only waste an
                        # expansion, and its zeroed parameters must not
                        # warm-start children.
                        continue
                    child_node = _Node(
                        child, outcome.params, outcome.infidelity,
                        parent.layers + 1,
                    )
                    if outcome.infidelity <= self.success_threshold:
                        return finish(child_node, True)
                    if outcome.infidelity < best.infidelity:
                        best = child_node
                    tick += 1
                    heapq.heappush(
                        frontier,
                        (
                            self._priority(
                                outcome.infidelity, child_node.layers
                            ),
                            tick,
                            child_node,
                        ),
                    )
            return finish(best, best.infidelity <= self.success_threshold)
