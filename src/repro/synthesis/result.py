"""The synthesis report shared by every pass in :mod:`repro.synthesis`."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.circuit import QuditCircuit

__all__ = ["SynthesisResult"]


@dataclass
class SynthesisResult:
    """Outcome of a synthesis, resynthesis, or partitioned pass.

    ``instantiation_calls`` counts inner-loop engine invocations (the
    quantity the paper's fast instantiation multiplies out), and the
    ``engine_cache_*`` counters report how often the structure-keyed
    :class:`~repro.instantiation.EnginePool` skipped an AOT compile.
    ``nodes_expanded`` is the number of search states examined — frontier
    expansions for :class:`~repro.synthesis.SynthesisSearch`, deletion
    candidates for :class:`~repro.synthesis.Resynthesizer`, windows for
    :class:`~repro.synthesis.PartitionedSynthesizer`.

    ``workers`` reports the candidate-executor width the pass ran with,
    and ``parallel_efficiency`` the fraction of the theoretical
    ``workers x evaluation-wall`` budget that engines actually spent
    fitting (1.0 = perfect scaling; ``None`` when nothing was fitted).
    Candidate seeds are derived per structure key, so the
    circuit/params/infidelity/counter fields are bit-identical across
    worker counts — only the wall/efficiency fields vary.
    """

    circuit: QuditCircuit
    params: np.ndarray
    infidelity: float
    success: bool
    instantiation_calls: int = 0
    engine_cache_hits: int = 0
    engine_cache_misses: int = 0
    nodes_expanded: int = 0
    wall_seconds: float = 0.0
    #: Per-window reports for partitioned passes (empty otherwise).
    windows: list["SynthesisResult"] = field(default_factory=list)
    workers: int = 1
    parallel_efficiency: float | None = None
    #: Degradation counters (from the executor's telemetry): candidates
    #: that returned a failed outcome (quarantined crash, deadline,
    #: non-finite fit), crash-retry resubmissions that recovered, and
    #: deadline expiries.  All zero on a healthy pass; a caller seeing
    #: nonzero values knows this result ran degraded rounds (its best
    #: circuit is still valid, but some candidates were never scored).
    failed_candidates: int = 0
    retries: int = 0
    timed_out: int = 0
    #: Round boundary this pass was restored from (``None`` for a
    #: fault-free, single-process run).  Informational only: resumed
    #: results are bit-identical to uninterrupted ones.
    resumed_from_round: int | None = None
    #: The merged telemetry-registry delta this pass produced (flat
    #: metric name -> number, or histogram-state dict); includes
    #: metrics shipped back from worker processes.  Empty for results
    #: built before the pass ran under telemetry.
    metrics: dict = field(default_factory=dict)

    @property
    def gate_counts(self) -> dict[str, int]:
        return self.circuit.gate_counts()

    def count(self, gate_name: str) -> int:
        """Occurrences of a gate by name (e.g. ``"CX"``)."""
        return self.gate_counts.get(gate_name, 0)

    def report(self) -> str:
        """A human-readable multi-line report with a timing breakdown.

        Rendered from the pass's merged metrics: where the wall went
        (AOT compile, optimizer time, executor busy vs idle), the
        engine-cache hit ratio, and the fit-level counters — the
        numbers a synthesis user reads before reaching for the full
        Perfetto trace.
        """
        m = self.metrics

        def num(name: str) -> float:
            value = m.get(name, 0)
            if isinstance(value, dict):
                return float(value.get("sum", 0.0))
            return float(value)

        lines = [
            f"synthesis {'succeeded' if self.success else 'FAILED'}: "
            f"infidelity={self.infidelity:.3e} "
            f"ops={self.circuit.num_operations} "
            f"wall={self.wall_seconds:.2f}s",
            f"  search: {self.nodes_expanded} nodes expanded, "
            f"{self.instantiation_calls} instantiation calls, "
            f"{self.workers} worker(s)",
        ]
        total_cache = self.engine_cache_hits + self.engine_cache_misses
        if total_cache:
            lines.append(
                f"  engine cache: {self.engine_cache_hits} hits / "
                f"{self.engine_cache_misses} misses "
                f"({self.engine_cache_hits / total_cache:.0%} hit ratio)"
            )
        compile_s = num("engine_pool.aot_seconds")
        optimize_s = num("instantiate.optimize_seconds")
        busy_s = num("synthesis.busy_seconds")
        eval_wall_s = num("synthesis.eval_wall_seconds")
        if self.wall_seconds > 0 and (compile_s or optimize_s or eval_wall_s):
            lines.append("  timing breakdown:")
            lines.append(
                f"    compile (AOT):   {compile_s:8.3f}s "
                f"({compile_s / self.wall_seconds:5.1%} of wall)"
            )
            lines.append(
                f"    optimize (LM):   {optimize_s:8.3f}s "
                f"({optimize_s / self.wall_seconds:5.1%} of wall)"
            )
            if eval_wall_s:
                budget = self.workers * eval_wall_s
                idle_s = max(0.0, budget - busy_s)
                lines.append(
                    f"    executor busy:   {busy_s:8.3f}s of "
                    f"{budget:.3f}s budget (idle {idle_s:.3f}s)"
                )
        fits = m.get("instantiate.fits", 0)
        if fits:
            iters = num("instantiate.lm_iterations")
            lines.append(
                f"  fits: {fits} ({int(iters)} LM iterations, "
                f"{iters / fits:.1f} per fit)"
            )
        if self.parallel_efficiency is not None:
            lines.append(
                f"  parallel efficiency: {self.parallel_efficiency:.0%}"
            )
        if self.failed_candidates or self.retries or self.timed_out:
            lines.append(
                f"  degraded: {self.failed_candidates} failed "
                f"candidate(s), {self.retries} crash retries, "
                f"{self.timed_out} deadline expiries"
            )
        if self.resumed_from_round is not None:
            lines.append(
                f"  resumed from round {self.resumed_from_round} "
                "(bit-identical to an uninterrupted run)"
            )
        if self.windows:
            lines.append(f"  windows: {len(self.windows)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "success" if self.success else "FAILED"
        return (
            f"<SynthesisResult {status} infidelity={self.infidelity:.3e} "
            f"ops={self.circuit.num_operations} "
            f"calls={self.instantiation_calls} "
            f"wall={self.wall_seconds:.2f}s>"
        )
