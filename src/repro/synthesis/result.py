"""The synthesis report shared by every pass in :mod:`repro.synthesis`."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.circuit import QuditCircuit

__all__ = ["SynthesisResult"]


@dataclass
class SynthesisResult:
    """Outcome of a synthesis, resynthesis, or partitioned pass.

    ``instantiation_calls`` counts inner-loop engine invocations (the
    quantity the paper's fast instantiation multiplies out), and the
    ``engine_cache_*`` counters report how often the structure-keyed
    :class:`~repro.instantiation.EnginePool` skipped an AOT compile.
    ``nodes_expanded`` is the number of search states examined — frontier
    expansions for :class:`~repro.synthesis.SynthesisSearch`, deletion
    candidates for :class:`~repro.synthesis.Resynthesizer`, windows for
    :class:`~repro.synthesis.PartitionedSynthesizer`.

    ``workers`` reports the candidate-executor width the pass ran with,
    and ``parallel_efficiency`` the fraction of the theoretical
    ``workers x evaluation-wall`` budget that engines actually spent
    fitting (1.0 = perfect scaling; ``None`` when nothing was fitted).
    Candidate seeds are derived per structure key, so the
    circuit/params/infidelity/counter fields are bit-identical across
    worker counts — only the wall/efficiency fields vary.
    """

    circuit: QuditCircuit
    params: np.ndarray
    infidelity: float
    success: bool
    instantiation_calls: int = 0
    engine_cache_hits: int = 0
    engine_cache_misses: int = 0
    nodes_expanded: int = 0
    wall_seconds: float = 0.0
    #: Per-window reports for partitioned passes (empty otherwise).
    windows: list["SynthesisResult"] = field(default_factory=list)
    workers: int = 1
    parallel_efficiency: float | None = None

    @property
    def gate_counts(self) -> dict[str, int]:
        return self.circuit.gate_counts()

    def count(self, gate_name: str) -> int:
        """Occurrences of a gate by name (e.g. ``"CX"``)."""
        return self.gate_counts.get(gate_name, 0)

    def __repr__(self) -> str:
        status = "success" if self.success else "FAILED"
        return (
            f"<SynthesisResult {status} infidelity={self.infidelity:.3e} "
            f"ops={self.circuit.num_operations} "
            f"calls={self.instantiation_calls} "
            f"wall={self.wall_seconds:.2f}s>"
        )
