"""Pattern language and e-matching for rewrite rules.

Patterns are written as s-expressions; ``?x`` is a pattern variable::

    (sin (~ ?x))            matches sin of a negated subterm
    (+ (* (sin ?x) (sin ?x)) (* (cos ?x) (cos ?x)))   the Pythagorean LHS

Matching is the standard backtracking e-matching procedure: a pattern
node matches an e-class if any e-node in the class has the same operator
and every child pattern matches the corresponding child class.
"""

from __future__ import annotations

from dataclasses import dataclass

from .egraph import EGraph

__all__ = ["Pattern", "PatVar", "PatNode", "parse_pattern", "Rewrite"]


@dataclass(frozen=True)
class PatVar:
    """A pattern variable, written ``?name``."""

    name: str


@dataclass(frozen=True)
class PatNode:
    """A concrete operator pattern with child patterns.

    Leaves use ``payload``: ``("const", 2.0)``, ``("var", "x")``, or
    ``("pi", None)``.
    """

    op: str
    payload: object = None
    children: tuple["Pattern", ...] = ()


Pattern = PatVar | PatNode


def parse_pattern(text: str) -> Pattern:
    """Parse an s-expression pattern string."""
    tokens = text.replace("(", " ( ").replace(")", " ) ").split()
    pos = 0

    def parse() -> Pattern:
        nonlocal pos
        tok = tokens[pos]
        pos += 1
        if tok == "(":
            op = tokens[pos]
            pos += 1
            children = []
            while tokens[pos] != ")":
                children.append(parse())
            pos += 1
            return PatNode(op=op, children=tuple(children))
        if tok == ")":
            raise ValueError("unexpected ')' in pattern")
        if tok.startswith("?"):
            return PatVar(tok[1:])
        if tok == "pi":
            return PatNode(op="pi")
        try:
            return PatNode(op="const", payload=float(tok))
        except ValueError:
            return PatNode(op="var", payload=tok)

    result = parse()
    if pos != len(tokens):
        raise ValueError("trailing tokens in pattern")
    return result


def match_in_class(
    egraph: EGraph, pattern: Pattern, cid: int,
    limit: int | None = None,
) -> list[dict[str, int]]:
    """All substitutions under which ``pattern`` matches e-class ``cid``."""
    results: list[dict[str, int]] = []
    _match(egraph, pattern, egraph.find(cid), {}, results, limit)
    return results


def _match(
    egraph: EGraph,
    pattern: Pattern,
    cid: int,
    subst: dict[str, int],
    out: list[dict[str, int]],
    limit: int | None,
) -> None:
    if limit is not None and len(out) >= limit:
        return
    if isinstance(pattern, PatVar):
        bound = subst.get(pattern.name)
        if bound is None:
            new = dict(subst)
            new[pattern.name] = cid
            out.append(new)
        elif egraph.find(bound) == cid:
            out.append(dict(subst))
        return
    cls = egraph.classes.get(cid)
    if cls is None:
        return
    for node in list(cls.nodes):
        op, payload, children = node
        if op != pattern.op:
            continue
        if pattern.op in ("const", "var") and payload != pattern.payload:
            continue
        if len(children) != len(pattern.children):
            continue
        partials = [dict(subst)]
        for pat_child, child_cid in zip(pattern.children, children):
            next_partials: list[dict[str, int]] = []
            for p in partials:
                _match(
                    egraph, pat_child, egraph.find(child_cid),
                    p, next_partials, limit,
                )
            partials = next_partials
            if not partials:
                break
        out.extend(partials)
        if limit is not None and len(out) >= limit:
            return


def instantiate(
    egraph: EGraph, pattern: Pattern, subst: dict[str, int]
) -> int:
    """Build the pattern in the e-graph under a substitution."""
    if isinstance(pattern, PatVar):
        return egraph.find(subst[pattern.name])
    children = [
        instantiate(egraph, c, subst) for c in pattern.children
    ]
    return egraph.add(pattern.op, pattern.payload, children)


class Rewrite:
    """A directed rewrite rule ``lhs => rhs``."""

    __slots__ = ("name", "lhs", "rhs")

    def __init__(self, name: str, lhs: str | Pattern, rhs: str | Pattern):
        self.name = name
        self.lhs = parse_pattern(lhs) if isinstance(lhs, str) else lhs
        self.rhs = parse_pattern(rhs) if isinstance(rhs, str) else rhs

    def search(
        self, egraph: EGraph, limit_per_class: int = 32
    ) -> list[tuple[int, dict[str, int]]]:
        """Find (matched class id, substitution) pairs across the graph."""
        found: list[tuple[int, dict[str, int]]] = []
        for cls in egraph.eclasses():
            cid = egraph.find(cls.id)
            if cid != cls.id:
                continue
            for subst in match_in_class(
                egraph, self.lhs, cid, limit_per_class
            ):
                found.append((cid, subst))
        return found

    def apply(
        self, egraph: EGraph, matches: list[tuple[int, dict[str, int]]]
    ) -> int:
        """Union each matched class with the instantiated RHS."""
        changed = 0
        for cid, subst in matches:
            rhs_id = instantiate(egraph, self.rhs, subst)
            root = egraph.find(cid)
            if rhs_id != root:
                egraph.union(rhs_id, root)
                changed += 1
        return changed

    def __repr__(self) -> str:
        return f"Rewrite({self.name})"


def bidirectional(name: str, lhs: str, rhs: str) -> list[Rewrite]:
    """A pair of rewrites for ``lhs <=> rhs``."""
    return [Rewrite(name, lhs, rhs), Rewrite(f"{name}-rev", rhs, lhs)]
