"""E-graph based symbolic simplification (equality saturation)."""

from .cost import TABLE_I, expression_cost, op_cost
from .egraph import EClass, EGraph, ENode
from .extract import GreedyExtractor, extract_best
from .pattern import Pattern, PatNode, PatVar, Rewrite, parse_pattern
from .rules import arithmetic_rules, default_rules, exp_rules, trig_rules
from .runner import Runner, RunnerLimits, RunnerReport, simplify, simplify_all

__all__ = [
    "EGraph",
    "EClass",
    "ENode",
    "Rewrite",
    "Pattern",
    "PatVar",
    "PatNode",
    "parse_pattern",
    "default_rules",
    "arithmetic_rules",
    "trig_rules",
    "exp_rules",
    "Runner",
    "RunnerLimits",
    "RunnerReport",
    "simplify",
    "simplify_all",
    "GreedyExtractor",
    "extract_best",
    "op_cost",
    "expression_cost",
    "TABLE_I",
]
