"""Equality saturation driver with the paper's blow-up safeguards.

QGL expressions for individual gates are small and sparse, so e-graphs
are not expected to grow large; nonetheless iteration and node-count
limits are applied (paper section III-C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..symbolic.expr import Expr
from .cost import expression_cost
from .egraph import EGraph
from .extract import GreedyExtractor
from .pattern import Rewrite
from .rules import default_rules

__all__ = ["RunnerLimits", "RunnerReport", "Runner", "simplify_all", "simplify"]


@dataclass(frozen=True)
class RunnerLimits:
    """Safeguards against saturation blow-up."""

    iterations: int = 8
    nodes: int = 8_000
    matches_per_rule: int = 2_000
    time_seconds: float = 5.0


@dataclass
class RunnerReport:
    """What happened during a saturation run."""

    iterations: int = 0
    stop_reason: str = "saturated"
    unions: int = 0
    final_nodes: int = 0
    final_classes: int = 0
    rule_hits: dict[str, int] = field(default_factory=dict)


class Runner:
    """Runs equality saturation on an e-graph with a rule set."""

    def __init__(
        self,
        rules: list[Rewrite] | None = None,
        limits: RunnerLimits | None = None,
    ):
        self.rules = default_rules() if rules is None else rules
        self.limits = limits or RunnerLimits()

    def run(self, egraph: EGraph) -> RunnerReport:
        report = RunnerReport()
        deadline = time.monotonic() + self.limits.time_seconds
        for iteration in range(self.limits.iterations):
            report.iterations = iteration + 1
            unions_before = egraph.num_unions

            # Search-then-apply: collect all matches against a frozen
            # graph, then apply, then rebuild once.
            all_matches = []
            for rule in self.rules:
                matches = rule.search(egraph)
                if len(matches) > self.limits.matches_per_rule:
                    matches = matches[: self.limits.matches_per_rule]
                if matches:
                    all_matches.append((rule, matches))
            for rule, matches in all_matches:
                hits = rule.apply(egraph, matches)
                if hits:
                    report.rule_hits[rule.name] = (
                        report.rule_hits.get(rule.name, 0) + hits
                    )
            egraph.rebuild()

            if egraph.num_unions == unions_before:
                report.stop_reason = "saturated"
                break
            if egraph.num_nodes > self.limits.nodes:
                report.stop_reason = "node-limit"
                break
            if time.monotonic() > deadline:
                report.stop_reason = "time-limit"
                break
        else:
            report.stop_reason = "iteration-limit"
        report.unions = egraph.num_unions
        report.final_nodes = egraph.num_nodes
        report.final_classes = egraph.num_classes
        return report


def simplify_all(
    exprs: list[Expr],
    rules: list[Rewrite] | None = None,
    limits: RunnerLimits | None = None,
) -> list[Expr]:
    """Jointly simplify a batch of expressions with shared CSE.

    This is the pass the JIT pipeline runs on the real and imaginary
    components of a gate's unitary *and* its gradient: one e-graph is
    populated with every root, equality saturation runs once, and the
    greedy extractor pulls the roots out in order, zeroing costs as it
    goes so later roots reuse earlier subexpressions.
    """
    if not exprs:
        return []
    egraph = EGraph()
    roots = [egraph.add_expr(e) for e in exprs]
    egraph.rebuild()
    Runner(rules, limits).run(egraph)
    extractor = GreedyExtractor(egraph)
    extracted = extractor.extract_many(roots)
    # The greedy extractor scores e-classes as trees, so on rare inputs
    # it can pick a form that is *worse* under the DAG-aware cost the
    # JIT actually pays (e.g. `2*sin(x)` over `sin(x)+sin(x)`, whose
    # shared sin is emitted once).  Never let simplification regress:
    # keep the originals unless extraction genuinely improved the
    # batch.
    if _batch_cost(extracted) <= _batch_cost(exprs):
        return extracted
    return list(exprs)


def _batch_cost(exprs: list[Expr]) -> float:
    """DAG-aware Table I cost of a batch: every distinct node counted
    once across all roots, via a ``seen`` set shared between calls."""
    seen: set[int] = set()
    return sum(expression_cost(root, seen) for root in exprs)


def simplify(
    expr: Expr,
    rules: list[Rewrite] | None = None,
    limits: RunnerLimits | None = None,
) -> Expr:
    """Simplify a single expression."""
    return simplify_all([expr], rules, limits)[0]
