"""Greedy bottom-up extraction with zero-cost CSE (paper section III-C).

Optimal extraction from an e-graph is an ILP; OpenQudit instead uses a
novel greedy heuristic:

1. *Stabilize* costs: iterate minimum e-class costs to a fixpoint.
2. Extract the lowest-cost expression for the next requested root.
3. Set the cost of every e-class traversed during that extraction to
   zero, so subsequent extractions greedily reuse already-computed
   subexpressions (explicit common-subexpression elimination).
4. Repeat from step 1 until all roots are extracted.

The canonical example is the U2 gate: once ``e^(iλ)`` and ``e^(iϕ)``
have been extracted, the rewrite-discovered form ``e^(iλ)·e^(iϕ)`` of
``e^(i(ϕ+λ))`` costs a single multiplication and wins over the direct
trigonometric form.
"""

from __future__ import annotations

import math

from ..symbolic import expr as E
from ..symbolic.expr import Expr
from .cost import op_cost
from .egraph import EGraph, ENode

__all__ = ["GreedyExtractor", "extract_best"]

_INF = math.inf


class GreedyExtractor:
    """Multi-root extractor over a saturated e-graph."""

    def __init__(self, egraph: EGraph):
        self.egraph = egraph
        self.class_cost: dict[int, float] = {}
        # The acyclic witness node found during stabilization; used as a
        # safe fallback if greedy selection would create a cycle.
        self.witness: dict[int, ENode] = {}
        # Completed extractions, reusable at zero cost.
        self.extracted: dict[int, Expr] = {}
        self._stabilize()

    # ------------------------------------------------------------------
    def _node_cost(self, node: ENode) -> float:
        op, _payload, children = node
        total = op_cost(op)
        for child in children:
            child_cost = self.class_cost.get(self.egraph.find(child), _INF)
            if child_cost is _INF:
                return _INF
            total += child_cost
        return total

    def _stabilize(self) -> None:
        """Iterate class costs to a fixpoint (step 1 of the algorithm)."""
        changed = True
        while changed:
            changed = False
            for cls in self.egraph.eclasses():
                cid = self.egraph.find(cls.id)
                if cid != cls.id:
                    continue
                if cid in self.extracted:
                    # Traversed classes stay pinned at zero.
                    if self.class_cost.get(cid) != 0.0:
                        self.class_cost[cid] = 0.0
                        changed = True
                    continue
                best = self.class_cost.get(cid, _INF)
                for node in cls.nodes:
                    cost = self._node_cost(node)
                    if cost < best:
                        best = cost
                        self.witness[cid] = node
                        changed = True
                if best < self.class_cost.get(cid, _INF):
                    self.class_cost[cid] = best
        # witness updates only happen on strict improvement, so the
        # witness forest is acyclic.

    # ------------------------------------------------------------------
    def extract(self, root: int) -> Expr:
        """Extract the current cheapest expression for ``root``."""
        self._stabilize()
        expr = self._extract_class(self.egraph.find(root), stack=set())
        return expr

    def extract_many(self, roots: list[int]) -> list[Expr]:
        """Extract all roots in order with cross-root CSE."""
        return [self.extract(r) for r in roots]

    def _extract_class(self, cid: int, stack: set[int]) -> Expr:
        cid = self.egraph.find(cid)
        done = self.extracted.get(cid)
        if done is not None:
            return done
        cls = self.egraph.classes[cid]
        stack = stack | {cid}

        best_node: ENode | None = None
        best_cost = _INF
        for node in cls.nodes:
            if any(self.egraph.find(c) in stack for c in node[2]):
                continue  # would create a cycle
            cost = self._node_cost(node)
            if cost < best_cost:
                best_cost = cost
                best_node = node
        if best_node is None:
            # Every greedy candidate loops back into the active stack;
            # fall back to the acyclic stabilization witness.
            best_node = self.witness.get(cid)
            if best_node is None:
                raise ValueError(
                    f"e-class {cid} has no extractable expression"
                )

        expr = self._build(best_node, stack)
        # Step 3: the traversed class now costs nothing to reuse.
        self.extracted[cid] = expr
        self.class_cost[cid] = 0.0
        return expr

    def _build(self, node: ENode, stack: set[int]) -> Expr:
        op, payload, children = node
        if op == "const":
            return E.const(payload)
        if op == "var":
            return E.var(payload)
        if op == "pi":
            return E.PI
        args = [self._extract_class(c, stack) for c in children]
        return E.build(op, args)


def extract_best(egraph: EGraph, root: int) -> Expr:
    """Single-root convenience wrapper."""
    return GreedyExtractor(egraph).extract(root)
