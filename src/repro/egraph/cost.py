"""The Table I cost model for e-graph extraction.

====================  =====
expression type       cost
====================  =====
pi, variable          0.0
constant              0.5
``~ + -``             1.0
``* /``               5.0
``sqrt sin cos``      50.0
``exp ln pow``        100.0
====================  =====

The large separation between cheap arithmetic and expensive
trigonometric/exponential operations is the dominant factor; the paper
notes the results are robust to small perturbations of these weights.
"""

from __future__ import annotations

__all__ = ["op_cost", "TABLE_I", "expression_cost"]

TABLE_I: dict[str, float] = {
    "pi": 0.0,
    "var": 0.0,
    "const": 0.5,
    "~": 1.0,
    "+": 1.0,
    "-": 1.0,
    "*": 5.0,
    "/": 5.0,
    "sqrt": 50.0,
    "sin": 50.0,
    "cos": 50.0,
    "exp": 100.0,
    "ln": 100.0,
    "pow": 100.0,
}


def op_cost(op: str) -> float:
    """Cost of a single operator application (children not included)."""
    try:
        return TABLE_I[op]
    except KeyError:
        raise ValueError(f"no cost defined for operator {op!r}") from None


def expression_cost(expr) -> float:
    """DAG-aware cost of a symbolic expression.

    Shared subexpressions are counted once, matching what the JIT's
    common-subexpression elimination will actually emit.
    """
    from ..symbolic import expr as E

    return sum(op_cost(node.op) for node in E.postorder(expr))
