"""The Table I cost model for e-graph extraction.

====================  =====
expression type       cost
====================  =====
pi, variable          0.0
constant              0.5
``~ + -``             1.0
``* /``               5.0
``sqrt sin cos``      50.0
``exp ln pow``        100.0
====================  =====

The large separation between cheap arithmetic and expensive
trigonometric/exponential operations is the dominant factor; the paper
notes the results are robust to small perturbations of these weights.
"""

from __future__ import annotations

__all__ = ["op_cost", "TABLE_I", "expression_cost"]

TABLE_I: dict[str, float] = {
    "pi": 0.0,
    "var": 0.0,
    "const": 0.5,
    "~": 1.0,
    "+": 1.0,
    "-": 1.0,
    "*": 5.0,
    "/": 5.0,
    "sqrt": 50.0,
    "sin": 50.0,
    "cos": 50.0,
    "exp": 100.0,
    "ln": 100.0,
    "pow": 100.0,
}


def op_cost(op: str) -> float:
    """Cost of a single operator application (children not included)."""
    try:
        return TABLE_I[op]
    except KeyError:
        raise ValueError(f"no cost defined for operator {op!r}") from None


def expression_cost(expr, seen: set[int] | None = None) -> float:
    """DAG-aware cost of a symbolic expression.

    Shared subexpressions are counted once, matching what the JIT's
    common-subexpression elimination will actually emit.  Passing the
    same ``seen`` set across several calls extends the de-duplication
    across roots (Expr nodes are interned, so identity equals
    structure), which is how batch costs are computed.
    """
    from ..symbolic import expr as E

    if seen is None:
        seen = set()
    total = 0.0
    for node in E.postorder(expr):
        if id(node) not in seen:
            seen.add(id(node))
            total += op_cost(node.op)
    return total
