"""An e-graph with hash-consing, union-find, and congruence rebuilding.

This is a from-scratch implementation of the data structure used by the
EGG library (Willsey et al., POPL 2021) that OpenQudit builds on for its
expression optimizer (paper section III-C).  It follows egg's deferred
rebuilding design: unions enqueue the merged class on a worklist and
congruence closure is restored in a single :meth:`EGraph.rebuild` pass.

An e-node is a tuple ``(op, payload, children)`` where ``children`` are
e-class ids; ``payload`` carries the constant value or variable name for
leaves.  A constant-folding analysis runs alongside: whenever every child
of an e-node has a known numeric value, the parent class is assigned the
folded value and a literal e-node is injected so that extraction can pick
the cheap constant form.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from ..symbolic import expr as E
from ..symbolic.expr import Expr

__all__ = ["ENode", "EClass", "EGraph"]

ENode = tuple  # (op: str, payload: float | str | None, children: tuple[int, ...])


def make_enode(op: str, payload, children: Iterable[int]) -> ENode:
    return (op, payload, tuple(children))


class EClass:
    """An equivalence class of e-nodes."""

    __slots__ = ("id", "nodes", "parents", "const")

    def __init__(self, cid: int):
        self.id = cid
        self.nodes: set[ENode] = set()
        # (parent enode as last canonicalized, parent class id)
        self.parents: list[tuple[ENode, int]] = []
        self.const: float | None = None

    def __repr__(self) -> str:
        return f"EClass({self.id}, nodes={len(self.nodes)}, const={self.const})"


class EGraph:
    """The e-graph.  See module docstring."""

    def __init__(self, constant_folding: bool = True):
        self._parent: list[int] = []
        self.memo: dict[ENode, int] = {}
        self.classes: dict[int, EClass] = {}
        self._worklist: list[int] = []
        self.constant_folding = constant_folding
        self._n_unions = 0

    # ------------------------------------------------------------------
    # Union-find
    # ------------------------------------------------------------------
    def find(self, cid: int) -> int:
        root = cid
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cid] != root:
            self._parent[cid], cid = root, self._parent[cid]
        return root

    def _new_class(self) -> EClass:
        cid = len(self._parent)
        self._parent.append(cid)
        cls = EClass(cid)
        self.classes[cid] = cls
        return cls

    # ------------------------------------------------------------------
    # Adding
    # ------------------------------------------------------------------
    def canonicalize(self, node: ENode) -> ENode:
        op, payload, children = node
        return (op, payload, tuple(self.find(c) for c in children))

    def add(self, op: str, payload=None, children: Iterable[int] = ()) -> int:
        """Add an e-node, returning its (canonical) e-class id."""
        node = self.canonicalize(make_enode(op, payload, children))
        existing = self.memo.get(node)
        if existing is not None:
            return self.find(existing)
        cls = self._new_class()
        cls.nodes.add(node)
        self.memo[node] = cls.id
        for child in node[2]:
            self.classes[self.find(child)].parents.append((node, cls.id))
        if self.constant_folding:
            self._maybe_fold(cls, node)
        return cls.id

    def add_expr(self, expr: Expr) -> int:
        """Add a symbolic expression tree, returning its root class id."""
        memo: dict[int, int] = {}
        for node in E.postorder(expr):
            if node.op == "const":
                memo[id(node)] = self.add("const", node.value)
            elif node.op == "var":
                memo[id(node)] = self.add("var", node.name)
            elif node.op == "pi":
                memo[id(node)] = self.add("pi")
            else:
                memo[id(node)] = self.add(
                    node.op, None, (memo[id(c)] for c in node.children)
                )
        return memo[id(expr)]

    # ------------------------------------------------------------------
    # Union and rebuilding
    # ------------------------------------------------------------------
    def union(self, a: int, b: int) -> int:
        """Merge two e-classes; returns the surviving canonical id."""
        a, b = self.find(a), self.find(b)
        if a == b:
            return a
        # Keep the class with more parents as the root (union by size).
        if len(self.classes[a].parents) < len(self.classes[b].parents):
            a, b = b, a
        self._parent[b] = a
        ca, cb = self.classes[a], self.classes.pop(b)
        ca.nodes.update(cb.nodes)
        ca.parents.extend(cb.parents)
        if cb.const is not None:
            if ca.const is None:
                ca.const = cb.const
                self._inject_const(ca)
        self._worklist.append(a)
        self._n_unions += 1
        return a

    def rebuild(self) -> None:
        """Restore the congruence and hashcons invariants."""
        while self._worklist:
            todo = {self.find(c) for c in self._worklist}
            self._worklist.clear()
            for cid in todo:
                self._repair(cid)

    def _repair(self, cid: int) -> None:
        cls = self.classes.get(self.find(cid))
        if cls is None:
            return
        # Re-canonicalize parent e-nodes; congruent parents get unioned.
        new_parents: dict[ENode, int] = {}
        for pnode, pclass in cls.parents:
            self.memo.pop(pnode, None)
            canon = self.canonicalize(pnode)
            pclass = self.find(pclass)
            prev = new_parents.get(canon)
            if prev is not None:
                pclass = self.union(prev, pclass)
            other = self.memo.get(canon)
            if other is not None and self.find(other) != pclass:
                pclass = self.union(other, pclass)
            self.memo[canon] = pclass
            new_parents[canon] = pclass
        cls = self.classes.get(self.find(cid))
        if cls is not None:
            cls.parents = [(n, self.find(c)) for n, c in new_parents.items()]
            cls.nodes = {self.canonicalize(n) for n in cls.nodes}

    # ------------------------------------------------------------------
    # Constant folding analysis
    # ------------------------------------------------------------------
    def _maybe_fold(self, cls: EClass, node: ENode) -> None:
        value = self._fold(node)
        if value is None:
            return
        cls.const = value
        self._inject_const(cls)

    def _fold(self, node: ENode) -> float | None:
        op, payload, children = node
        if op == "const":
            return payload
        if op == "pi":
            return math.pi
        if op == "var":
            return None
        args = []
        for c in children:
            v = self.classes[self.find(c)].const
            if v is None:
                return None
            args.append(v)
        try:
            if op == "+":
                v = args[0] + args[1]
            elif op == "-":
                v = args[0] - args[1]
            elif op == "~":
                v = -args[0]
            elif op == "*":
                v = args[0] * args[1]
            elif op == "/":
                v = args[0] / args[1]
            elif op == "pow":
                v = args[0] ** args[1]
            elif op == "sin":
                v = math.sin(args[0])
            elif op == "cos":
                v = math.cos(args[0])
            elif op == "exp":
                v = math.exp(args[0])
            elif op == "ln":
                v = math.log(args[0])
            elif op == "sqrt":
                v = math.sqrt(args[0])
            else:
                return None
        except (ValueError, OverflowError, ZeroDivisionError):
            return None
        if not math.isfinite(v):
            return None
        return v

    def _inject_const(self, cls: EClass) -> None:
        """Add a literal e-node carrying the class's folded value."""
        if cls.const is None or cls.const == math.pi:
            # pi already has a zero-cost leaf; don't replace it with a
            # 15-digit literal.
            return
        node = make_enode("const", cls.const, ())
        existing = self.memo.get(node)
        if existing is not None:
            root = self.find(existing)
            if root != cls.id:
                self.union(root, cls.id)
            return
        cls.nodes.add(node)
        self.memo[node] = cls.id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def num_nodes(self) -> int:
        return sum(len(c.nodes) for c in self.classes.values())

    @property
    def num_unions(self) -> int:
        return self._n_unions

    def eclasses(self) -> list[EClass]:
        """Snapshot of the canonical e-classes."""
        return list(self.classes.values())

    def __repr__(self) -> str:
        return (
            f"<EGraph classes={self.num_classes} nodes={self.num_nodes} "
            f"unions={self._n_unions}>"
        )
