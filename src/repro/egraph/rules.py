"""The rewrite-rule set for QGL expression simplification.

The paper bootstrapped its rules from Herbie's real-valued rule set and
refined them with Enumo (section III-C).  This reproduction curates the
same families by hand: commutative-ring arithmetic, negation and
subtraction canonicalization, division, powers, the closed-form
trigonometric identities (parity, angle sum/difference, double angle,
Pythagorean), and exponential/logarithm laws.

The set is intentionally "sound modulo definedness" in the Herbie sense:
rules such as ``x/x => 1`` are excluded, while rules that are total on
the reals are included.
"""

from __future__ import annotations

from .pattern import Rewrite, bidirectional

__all__ = ["default_rules", "arithmetic_rules", "trig_rules", "exp_rules"]


def arithmetic_rules() -> list[Rewrite]:
    rules: list[Rewrite] = []
    add = rules.extend
    add(bidirectional("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"))
    add(bidirectional("comm-mul", "(* ?a ?b)", "(* ?b ?a)"))
    add(bidirectional("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"))
    add(bidirectional("assoc-mul", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))"))
    rules.append(Rewrite("add-zero", "(+ ?a 0)", "?a"))
    rules.append(Rewrite("mul-one", "(* ?a 1)", "?a"))
    rules.append(Rewrite("mul-zero", "(* ?a 0)", "0"))
    rules.append(Rewrite("sub-zero", "(- ?a 0)", "?a"))
    rules.append(Rewrite("zero-sub", "(- 0 ?a)", "(~ ?a)"))
    rules.append(Rewrite("sub-self", "(- ?a ?a)", "0"))
    add(bidirectional("sub-canon", "(- ?a ?b)", "(+ ?a (~ ?b))"))
    rules.append(Rewrite("neg-neg", "(~ (~ ?a))", "?a"))
    add(bidirectional("neg-mul", "(* (~ ?a) ?b)", "(~ (* ?a ?b))"))
    add(bidirectional("neg-add", "(~ (+ ?a ?b))", "(+ (~ ?a) (~ ?b))"))
    add(
        bidirectional(
            "distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"
        )
    )
    rules.append(Rewrite("div-one", "(/ ?a 1)", "?a"))
    rules.append(Rewrite("zero-div", "(/ 0 ?a)", "0"))
    add(bidirectional("div-mul", "(/ (* ?a ?b) ?c)", "(* ?a (/ ?b ?c))"))
    add(bidirectional("neg-div", "(/ (~ ?a) ?b)", "(~ (/ ?a ?b))"))
    add(
        bidirectional(
            "add-same", "(+ ?a ?a)", "(* 2 ?a)"
        )
    )
    return rules


def power_rules() -> list[Rewrite]:
    rules: list[Rewrite] = []
    rules.append(Rewrite("pow-zero", "(pow ?a 0)", "1"))
    rules.append(Rewrite("pow-one", "(pow ?a 1)", "?a"))
    rules.extend(bidirectional("pow-two", "(pow ?a 2)", "(* ?a ?a)"))
    rules.append(
        Rewrite("pow-sum", "(* (pow ?a ?b) (pow ?a ?c))", "(pow ?a (+ ?b ?c))")
    )
    rules.append(Rewrite("sqrt-square", "(* (sqrt ?a) (sqrt ?a))", "?a"))
    rules.append(
        Rewrite("sqrt-prod", "(* (sqrt ?a) (sqrt ?b))", "(sqrt (* ?a ?b))")
    )
    return rules


def trig_rules() -> list[Rewrite]:
    rules: list[Rewrite] = []
    add = rules.extend
    # Parity.
    add(bidirectional("sin-neg", "(sin (~ ?x))", "(~ (sin ?x))"))
    rules.append(Rewrite("cos-neg", "(cos (~ ?x))", "(cos ?x)"))
    rules.append(Rewrite("cos-neg-intro", "(cos ?x)", "(cos (~ ?x))"))
    # Angle sum and difference (the identities behind the U2/U3 CSE
    # example in paper section III-C).
    add(
        bidirectional(
            "sin-sum",
            "(sin (+ ?a ?b))",
            "(+ (* (sin ?a) (cos ?b)) (* (cos ?a) (sin ?b)))",
        )
    )
    add(
        bidirectional(
            "cos-sum",
            "(cos (+ ?a ?b))",
            "(- (* (cos ?a) (cos ?b)) (* (sin ?a) (sin ?b)))",
        )
    )
    add(
        bidirectional(
            "sin-diff",
            "(sin (- ?a ?b))",
            "(- (* (sin ?a) (cos ?b)) (* (cos ?a) (sin ?b)))",
        )
    )
    add(
        bidirectional(
            "cos-diff",
            "(cos (- ?a ?b))",
            "(+ (* (cos ?a) (cos ?b)) (* (sin ?a) (sin ?b)))",
        )
    )
    # Double angle.
    add(
        bidirectional(
            "sin-double", "(sin (* 2 ?x))", "(* 2 (* (sin ?x) (cos ?x)))"
        )
    )
    add(
        bidirectional(
            "cos-double",
            "(cos (* 2 ?x))",
            "(- (* (cos ?x) (cos ?x)) (* (sin ?x) (sin ?x)))",
        )
    )
    # Pythagorean identity.
    rules.append(
        Rewrite(
            "sin2-cos2",
            "(+ (* (sin ?x) (sin ?x)) (* (cos ?x) (cos ?x)))",
            "1",
        )
    )
    rules.append(
        Rewrite(
            "one-minus-sin2",
            "(- 1 (* (sin ?x) (sin ?x)))",
            "(* (cos ?x) (cos ?x))",
        )
    )
    rules.append(
        Rewrite(
            "one-minus-cos2",
            "(- 1 (* (cos ?x) (cos ?x)))",
            "(* (sin ?x) (sin ?x))",
        )
    )
    return rules


def exp_rules() -> list[Rewrite]:
    rules: list[Rewrite] = []
    add = rules.extend
    add(bidirectional("exp-sum", "(exp (+ ?a ?b))", "(* (exp ?a) (exp ?b))"))
    rules.append(Rewrite("exp-neg", "(exp (~ ?a))", "(/ 1 (exp ?a))"))
    rules.append(Rewrite("ln-exp", "(ln (exp ?a))", "?a"))
    rules.append(Rewrite("exp-ln", "(exp (ln ?a))", "?a"))
    add(
        bidirectional(
            "exp-pow", "(pow (exp ?a) ?b)", "(exp (* ?a ?b))"
        )
    )
    return rules


def default_rules() -> list[Rewrite]:
    """The full rule set used by the OpenQudit simplification pass."""
    return (
        arithmetic_rules() + power_rules() + trig_rules() + exp_rules()
    )
