"""OpenQudit reproduction: extensible and accelerated numerical quantum
compilation via a JIT-compiled DSL (CGO 2026), implemented in Python.

Public API tour::

    from repro import UnitaryExpression, QuditCircuit, TNVM, instantiate

    # 1. Define gate semantics once, in QGL (paper Listing 2).
    rx = UnitaryExpression('''RX(theta) {
        [[cos(theta/2), ~i*sin(theta/2)],
         [~i*sin(theta/2), cos(theta/2)]]
    }''')

    # 2. Build a PQC with cached expressions (paper Listing 4).
    circ = QuditCircuit.pure([2, 2])
    ref = circ.cache_operation(rx)
    circ.append_ref(ref, 0)

    # 3. AOT-compile and evaluate through the TNVM (paper Listing 3).
    code = circ.compile()
    vm = TNVM(code)
    unitary, grad = vm.evaluate_with_grad([0.5])

    # 4. Or run the full instantiation engine.
    result = instantiate(circ, target, starts=8)

Subpackages: ``qgl`` (the DSL front end), ``symbolic`` (IR +
differentiation), ``egraph`` (equality saturation), ``jit`` (expression
compilation + cache), ``tensornet`` (AOT compiler), ``tnvm`` (runtime),
``circuit`` (gate library + builders), ``instantiation`` (LM engine),
``synthesis`` (search/compression passes), ``telemetry`` (spans +
metrics), ``baseline`` (the traditional comparator framework),
``utils``.
"""

import logging as _logging

# Library convention: the ``repro`` logger hierarchy stays silent
# unless the application configures handlers.  Debug-level span
# start/stop records land on ``repro.telemetry`` when REPRO_TRACE_LOG
# is set (see repro.telemetry.tracer).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from . import checkpoint, telemetry
from .checkpoint import CheckpointStore, PreemptedError
from .circuit import (
    FIG5_BENCHMARKS,
    QuditCircuit,
    build_dtc_circuit,
    build_qft_circuit,
    build_qsearch_ansatz,
    fig5_circuit,
    gates,
)
from .expression import UnitaryExpression
from .instantiation import (
    BatchedInstantiater,
    EnginePool,
    Instantiater,
    InstantiationResult,
    LMOptions,
    instantiate,
)
from .jit import ExpressionCache, global_cache
from .synthesis import (
    CustomLayerGenerator,
    PartitionedSynthesizer,
    QSearchLayerGenerator,
    Resynthesizer,
    SynthesisResult,
    SynthesisSearch,
)
from .tensornet import OutputContract, compile_network
from .tnvm import TNVM, BatchedTNVM, Differentiation
from .utils import hilbert_schmidt_infidelity, random_unitary

__version__ = "1.0.0"

__all__ = [
    "telemetry",
    "checkpoint",
    "CheckpointStore",
    "PreemptedError",
    "UnitaryExpression",
    "QuditCircuit",
    "TNVM",
    "BatchedTNVM",
    "Differentiation",
    "OutputContract",
    "compile_network",
    "ExpressionCache",
    "global_cache",
    "Instantiater",
    "BatchedInstantiater",
    "EnginePool",
    "InstantiationResult",
    "LMOptions",
    "instantiate",
    "SynthesisSearch",
    "SynthesisResult",
    "Resynthesizer",
    "PartitionedSynthesizer",
    "QSearchLayerGenerator",
    "CustomLayerGenerator",
    "gates",
    "build_qft_circuit",
    "build_dtc_circuit",
    "build_qsearch_ansatz",
    "fig5_circuit",
    "FIG5_BENCHMARKS",
    "random_unitary",
    "hilbert_schmidt_infidelity",
    "__version__",
]
