"""UnitaryExpression: the user-facing handle for QGL gate definitions.

This mirrors the paper's ``UnitaryExpression::new`` entry point
(Listings 2 and 4)::

    rx = UnitaryExpression('''RX(theta) {
        [[cos(theta/2), ~i*sin(theta/2)],
         [~i*sin(theta/2), cos(theta/2)]]
    }''')

From this lone definition OpenQudit derives the unitary matrix, its
analytical gradient, and the JIT-compiled code for both when needed.
The composability suite (dagger, controlled, Kronecker/matrix products,
substitution) returns new ``UnitaryExpression`` objects, enabling
on-the-fly creation of composite gates from high-level definitions.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .jit.cache import ExpressionCache, global_cache
from .jit.compiled import CompiledExpression
from .qgl import parse_unitary
from .symbolic import expr as E
from .symbolic.matrix import ExpressionMatrix

__all__ = ["UnitaryExpression"]


class UnitaryExpression:
    """A symbolic, unitary-valued gate expression."""

    __slots__ = ("matrix",)

    def __init__(self, source: str | ExpressionMatrix, name: str | None = None):
        if isinstance(source, str):
            matrix = parse_unitary(source)
        elif isinstance(source, ExpressionMatrix):
            matrix = source
        else:
            raise TypeError(
                "UnitaryExpression expects QGL source text or an "
                f"ExpressionMatrix, got {type(source).__name__}"
            )
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("a unitary expression must be square")
        if name is not None and matrix.name != name:
            matrix = ExpressionMatrix(
                matrix._data,
                params=matrix.params,
                radices=matrix.radices,
                name=name,
            )
        object.__setattr__(self, "matrix", matrix)

    def __setattr__(self, *_args) -> None:
        raise AttributeError("UnitaryExpression is immutable")

    @staticmethod
    def from_numpy(
        array: np.ndarray,
        radices: Sequence[int] | None = None,
        name: str | None = None,
    ) -> UnitaryExpression:
        """Lift a constant numeric unitary into a (parameterless)
        expression."""
        return UnitaryExpression(
            ExpressionMatrix.from_numpy(array, radices=radices, name=name)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str | None:
        return self.matrix.name

    @property
    def params(self) -> tuple[str, ...]:
        return self.matrix.params

    @property
    def num_params(self) -> int:
        return self.matrix.num_params

    @property
    def radices(self) -> tuple[int, ...]:
        return tuple(self.matrix.radices)

    @property
    def num_qudits(self) -> int:
        return self.matrix.num_qudits

    @property
    def dim(self) -> int:
        return self.matrix.dim

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def unitary(
        self, params: Sequence[float] | Mapping[str, float] = ()
    ) -> np.ndarray:
        """Reference (slow-path) numeric evaluation."""
        return self.matrix.evaluate(params)

    def is_unitary(self, params: Sequence[float] = (), tol: float = 1e-9) -> bool:
        return self.matrix.is_unitary(params, tol)

    def compiled(
        self,
        grad: bool = True,
        simplify: bool = True,
        cache: ExpressionCache | None = None,
    ) -> CompiledExpression:
        """The JIT-compiled form, via the shared expression cache."""
        if cache is None:  # empty caches are falsy; check identity
            cache = global_cache()
        return cache.get(self.matrix, grad=grad, simplify=simplify)

    # ------------------------------------------------------------------
    # Composability (paper section III-B)
    # ------------------------------------------------------------------
    def dagger(self) -> UnitaryExpression:
        """The inverse gate (conjugate transpose)."""
        return UnitaryExpression(self.matrix.dagger())

    def conjugate(self) -> UnitaryExpression:
        return UnitaryExpression(self.matrix.conjugate())

    def transpose(self) -> UnitaryExpression:
        return UnitaryExpression(self.matrix.transpose())

    def controlled(
        self, control_radix: int = 2, control_levels: Sequence[int] = (1,)
    ) -> UnitaryExpression:
        """Add a control qudit (e.g. ``x().controlled()`` is CNOT)."""
        return UnitaryExpression(
            self.matrix.controlled(control_radix, control_levels)
        )

    def kron(self, other: UnitaryExpression) -> UnitaryExpression:
        """Parallel composition on disjoint qudits.

        Parameters of the two operands stay independent: if ``other``
        reuses one of this gate's parameter names, its copy is renamed
        (``theta`` -> ``theta_1``), matching the intuition that two
        placed gates have separate knobs.  Use
        :meth:`UnitaryExpression.substitute` afterwards to deliberately
        tie parameters together.
        """
        return UnitaryExpression(
            self.matrix.kron(_disjoint(self.matrix, _mat(other)))
        )

    def __matmul__(self, other: UnitaryExpression) -> UnitaryExpression:
        """Sequential composition (matrix product); clashing parameter
        names in ``other`` are renamed, as in :meth:`kron`."""
        return UnitaryExpression(
            self.matrix @ _disjoint(self.matrix, _mat(other))
        )

    def substitute(self, mapping: Mapping[str, E.Expr]) -> UnitaryExpression:
        """Substitute parameter expressions (e.g. tie two parameters)."""
        return UnitaryExpression(self.matrix.substitute(mapping))

    def bind(self, values: Mapping[str, float]) -> UnitaryExpression:
        """Fix some parameters to constants."""
        return UnitaryExpression(self.matrix.bind(values))

    def rename_params(self, mapping: Mapping[str, str]) -> UnitaryExpression:
        return UnitaryExpression(self.matrix.rename_params(mapping))

    def __repr__(self) -> str:
        return (
            f"UnitaryExpression({self.name or '?'}, dim={self.dim}, "
            f"params={list(self.params)})"
        )


def _mat(value: UnitaryExpression | ExpressionMatrix) -> ExpressionMatrix:
    if isinstance(value, UnitaryExpression):
        return value.matrix
    return value


def _disjoint(
    left: ExpressionMatrix, right: ExpressionMatrix
) -> ExpressionMatrix:
    """Rename ``right``'s parameters so they do not collide with
    ``left``'s."""
    taken = set(left.params)
    mapping: dict[str, str] = {}
    for name in right.params:
        if name not in taken:
            taken.add(name)
            continue
        k = 1
        while f"{name}_{k}" in taken or f"{name}_{k}" in right.params:
            k += 1
        mapping[name] = f"{name}_{k}"
        taken.add(f"{name}_{k}")
    return right.rename_params(mapping) if mapping else right
