"""Forward-mode AD instruction specialization (paper section IV-B).

At initialization the TNVM turns each bytecode instruction into a
specialized closure.  The AOT compiler annotated every instruction with
the circuit parameters it depends on; the builders here use those sets
to apply the correct calculus — operations whose operands depend on
*independent* partials propagate each side separately, while operands
with *overlapping* parameters get the product rule.

All views are precomputed, so the hot closures perform no allocation
except one reused scratch matrix per product-rule instruction.
"""

from __future__ import annotations

from operator import itemgetter

import numpy as np

from ..jit.compiled import CompiledExpression
from ..tensornet.bytecode import Instruction, Program
from .buffers import BatchedMemoryPlan, MemoryPlan

__all__ = [
    "build_closure",
    "build_batched_closure",
    "build_batched_write_group",
]


def build_closure(
    instr: Instruction,
    program: Program,
    plan: MemoryPlan,
    compiled: list[CompiledExpression],
    grad: bool,
):
    """Create the specialized callable for one instruction.

    The returned closure has signature ``run(params)`` where ``params``
    is the flat circuit parameter sequence.
    """
    if instr.opcode == "WRITE":
        return _build_write(instr, program, plan, compiled, grad)
    if instr.opcode == "MATMUL":
        return _build_matmul(instr, program, plan, grad)
    if instr.opcode == "KRON":
        return _build_kron(instr, program, plan, grad)
    if instr.opcode == "HADAMARD":
        return _build_hadamard(instr, program, plan, grad)
    if instr.opcode == "TRANSPOSE":
        return _build_transpose(instr, program, plan, grad)
    raise ValueError(f"unknown opcode {instr.opcode}")


def build_batched_closure(
    instr: Instruction,
    program: Program,
    plan: BatchedMemoryPlan,
    compiled: list[CompiledExpression],
    grad: bool,
):
    """Create the batch-vectorized callable for one instruction.

    The returned closure has signature ``run(param_rows)`` where
    ``param_rows`` is a ``(num_params, batch)`` float array — row ``k``
    holds parameter ``k`` for every batch element, so the scalar
    builders' ``params[k]`` indexing carries over unchanged.
    """
    if instr.opcode == "WRITE":
        return _build_batched_write(instr, program, plan, compiled, grad)
    if instr.opcode == "MATMUL":
        return _build_batched_matmul(instr, program, plan, grad)
    if instr.opcode == "KRON":
        return _build_batched_kron(instr, program, plan, grad)
    if instr.opcode == "HADAMARD":
        return _build_batched_hadamard(instr, program, plan, grad)
    if instr.opcode == "TRANSPOSE":
        return _build_batched_transpose(instr, program, plan, grad)
    raise ValueError(f"unknown opcode {instr.opcode}")


def _param_positions(
    out_params: tuple[int, ...], side_params: tuple[int, ...]
) -> list[int]:
    """For each output parameter, its row in the side's gradient stack
    (or -1 when the side does not depend on it)."""
    index = {p: i for i, p in enumerate(side_params)}
    return [index.get(p, -1) for p in out_params]


def _grouped_rows(maps):
    """Split the per-row (a-position, b-position) maps into the three
    product-rule cases: a-side only, b-side only, and overlapping."""
    a_rows, a_idx, b_rows, b_idx, both = [], [], [], [], []
    for row, (x, y) in enumerate(maps):
        if x >= 0 and y >= 0:
            both.append((row, x, y))
        elif x >= 0:
            a_rows.append(row)
            a_idx.append(x)
        else:
            b_rows.append(row)
            b_idx.append(y)
    return a_rows, a_idx, b_rows, b_idx, both


def _index(ix: list[int]):
    """A slice when the indices are consecutive (zero-copy view, valid
    ``out=`` target), else a fancy-index array."""
    if ix and ix == list(range(ix[0], ix[-1] + 1)):
        return slice(ix[0], ix[-1] + 1)
    return np.asarray(ix, dtype=np.intp)


# ----------------------------------------------------------------------
# WRITE
# ----------------------------------------------------------------------

def _build_write(instr, program, plan, compiled, grad):
    expr = compiled[instr.expr_id]
    out_spec = program.buffers[instr.out_buf]
    val = plan.value_view(instr.out_buf, expr.shape)
    gview = plan.grad_view(instr.out_buf, expr.shape) if grad else None
    slots = instr.slots
    write = expr.write

    if not slots:
        # Fully constant: runs in the constant section.
        write_constants = expr.write_constants

        def run_const(params):
            write_constants(val)
            write((), val)

        return run_const

    if len(slots) == 1:
        j = slots[0]

        def pick(params, _j=j):
            return (params[_j],)
    else:
        getter = itemgetter(*slots)

        def pick(params, _g=getter):
            return _g(params)

    if gview is None:
        expr.write_constants(val)

        def run(params):
            write(pick(params), val)

        return run

    # Gradient path: the compiled expression produces one gradient row
    # per *slot* (gate-parameter order); the buffer's gradient stack has
    # one row per *sorted unique circuit parameter*.
    sorted_params = out_spec.params
    direct = tuple(slots) == tuple(sorted_params)
    if direct:
        expr.write_constants(val, gview)

        def run(params):
            write(pick(params), val, gview)

        return run

    # Scatter/accumulate path (duplicated or unordered slots): the
    # expression's per-slot gradient rows land in a scratch stack whose
    # constant entries are pre-written once, then accumulate into the
    # buffer's sorted-parameter rows.
    scratch = np.zeros((len(slots),) + expr.shape, dtype=plan.dtype)
    expr.write_constants(val, scratch)
    row_of = {p: i for i, p in enumerate(sorted_params)}
    scatter = [row_of[j] for j in slots]

    def run(params):
        write(pick(params), val, scratch)
        gview[:] = 0
        for s, row in enumerate(scatter):
            gview[row] += scratch[s]

    return run


# ----------------------------------------------------------------------
# MATMUL
# ----------------------------------------------------------------------

def _build_matmul(instr, program, plan, grad):
    m, k = instr.a_shape
    k2, n = instr.b_shape
    assert k == k2
    A = plan.value_view(instr.a_buf, (m, k))
    B = plan.value_view(instr.b_buf, (k, n))
    C = plan.value_view(instr.out_buf, (m, n))

    if not grad or not instr.params:

        def run(params):
            np.matmul(A, B, out=C)

        return run

    GA = plan.grad_view(instr.a_buf, (m, k))
    GB = plan.grad_view(instr.b_buf, (k, n))
    GC = plan.grad_view(instr.out_buf, (m, n))
    a_params = program.buffers[instr.a_buf].params
    b_params = program.buffers[instr.b_buf].params
    ia = _param_positions(instr.params, a_params)
    ib = _param_positions(instr.params, b_params)
    maps = list(zip(ia, ib))
    needs_scratch = any(x >= 0 and y >= 0 for x, y in maps)
    scratch = (
        np.zeros((m, n), dtype=plan.dtype) if needs_scratch else None
    )

    def run(params):
        np.matmul(A, B, out=C)
        for row, (x, y) in enumerate(maps):
            if x >= 0 and y >= 0:
                # Overlapping parameters: product rule.
                np.matmul(GA[x], B, out=GC[row])
                np.matmul(A, GB[y], out=scratch)
                GC[row] += scratch
            elif x >= 0:
                np.matmul(GA[x], B, out=GC[row])
            else:
                np.matmul(A, GB[y], out=GC[row])

    return run


# ----------------------------------------------------------------------
# KRON / HADAMARD (element-wise broadcasting kernels)
# ----------------------------------------------------------------------

def _build_kron(instr, program, plan, grad):
    ra, ca = instr.a_shape
    rb, cb = instr.b_shape
    A = plan.value_view(instr.a_buf, (ra, 1, ca, 1))
    B = plan.value_view(instr.b_buf, (1, rb, 1, cb))
    C = plan.value_view(instr.out_buf, (ra, rb, ca, cb))

    if not grad or not instr.params:

        def run(params):
            np.multiply(A, B, out=C)

        return run

    GA = plan.grad_view(instr.a_buf, (ra, 1, ca, 1))
    GB = plan.grad_view(instr.b_buf, (1, rb, 1, cb))
    GC = plan.grad_view(instr.out_buf, (ra, rb, ca, cb))
    a_params = program.buffers[instr.a_buf].params
    b_params = program.buffers[instr.b_buf].params
    maps = list(
        zip(
            _param_positions(instr.params, a_params),
            _param_positions(instr.params, b_params),
        )
    )
    needs_scratch = any(x >= 0 and y >= 0 for x, y in maps)
    scratch = (
        np.zeros((ra, rb, ca, cb), dtype=plan.dtype)
        if needs_scratch
        else None
    )

    def run(params):
        np.multiply(A, B, out=C)
        for row, (x, y) in enumerate(maps):
            if x >= 0 and y >= 0:
                np.multiply(GA[x], B, out=GC[row])
                np.multiply(A, GB[y], out=scratch)
                GC[row] += scratch
            elif x >= 0:
                np.multiply(GA[x], B, out=GC[row])
            else:
                np.multiply(A, GB[y], out=GC[row])

    return run


def _build_hadamard(instr, program, plan, grad):
    shape = instr.a_shape
    A = plan.value_view(instr.a_buf, shape)
    B = plan.value_view(instr.b_buf, shape)
    C = plan.value_view(instr.out_buf, shape)

    if not grad or not instr.params:

        def run(params):
            np.multiply(A, B, out=C)

        return run

    GA = plan.grad_view(instr.a_buf, shape)
    GB = plan.grad_view(instr.b_buf, shape)
    GC = plan.grad_view(instr.out_buf, shape)
    a_params = program.buffers[instr.a_buf].params
    b_params = program.buffers[instr.b_buf].params
    maps = list(
        zip(
            _param_positions(instr.params, a_params),
            _param_positions(instr.params, b_params),
        )
    )
    needs_scratch = any(x >= 0 and y >= 0 for x, y in maps)
    scratch = np.zeros(shape, dtype=plan.dtype) if needs_scratch else None

    def run(params):
        np.multiply(A, B, out=C)
        for row, (x, y) in enumerate(maps):
            if x >= 0 and y >= 0:
                np.multiply(GA[x], B, out=GC[row])
                np.multiply(A, GB[y], out=scratch)
                GC[row] += scratch
            elif x >= 0:
                np.multiply(GA[x], B, out=GC[row])
            else:
                np.multiply(A, GB[y], out=GC[row])

    return run


# ----------------------------------------------------------------------
# TRANSPOSE (fused reshape-permute-reshape, precomputed strided views)
# ----------------------------------------------------------------------

def _build_transpose(instr, program, plan, grad):
    shape = instr.shape
    perm = instr.perm
    src = plan.value_view(instr.a_buf, shape).transpose(perm)
    dst = plan.value_view(instr.out_buf, src.shape)

    if not grad or not instr.params:

        def run(params):
            np.copyto(dst, src)

        return run

    # Input and output parameter sets are identical for a transpose.
    gsrc_base = plan.grad_view(instr.a_buf, shape)
    gperm = (0,) + tuple(p + 1 for p in perm)
    gsrc = gsrc_base.transpose(gperm)
    gdst = plan.grad_view(instr.out_buf, src.shape)

    def run(params):
        np.copyto(dst, src)
        np.copyto(gdst, gsrc)

    return run


# ----------------------------------------------------------------------
# Batched builders
#
# Same calculus as the scalar builders above, with every view carrying
# a leading batch axis.  Contractions (MATMUL/KRON/HADAMARD/TRANSPOSE)
# broadcast over that axis in a single numpy call, so the per-
# instruction Python dispatch cost is amortized across all S starts.
# WRITE instead hands the JIT'd *batched* expression writer views with
# a trailing batch axis: the generated ``out[i, j] = ...`` stores then
# assign length-S vectors.
# ----------------------------------------------------------------------

def _build_batched_write(instr, program, plan, compiled, grad):
    expr = compiled[instr.expr_id]
    out_spec = program.buffers[instr.out_buf]
    val = plan.value_view(instr.out_buf, expr.shape)
    val_t = np.moveaxis(val, 0, -1)  # (*shape, batch) view
    gview = plan.grad_view(instr.out_buf, expr.shape) if grad else None
    slots = instr.slots

    if not slots:
        # Fully constant: the scalar writers assign complex scalars,
        # which broadcast over the trailing batch axis of ``val_t``.
        write_constants = expr.write_constants
        write = expr.write

        def run_const(params):
            write_constants(val_t)
            write((), val_t)

        return run_const

    write = expr.write_batched

    if len(slots) == 1:
        j = slots[0]

        def pick(params, _j=j):
            return (params[_j],)
    else:
        getter = itemgetter(*slots)

        def pick(params, _g=getter):
            return _g(params)

    if gview is None:
        expr.write_constants(val_t)

        def run(params):
            write(pick(params), val_t)

        return run

    gview_t = np.moveaxis(gview, 0, -1)  # (n_params, *shape, batch)
    sorted_params = out_spec.params
    direct = tuple(slots) == tuple(sorted_params)
    if direct:
        expr.write_constants(val_t, gview_t)

        def run(params):
            write(pick(params), val_t, gview_t)

        return run

    scratch = np.zeros(
        (len(slots),) + expr.shape + (plan.batch,), dtype=plan.dtype
    )
    expr.write_constants(val_t, scratch)
    row_of = {p: i for i, p in enumerate(sorted_params)}
    scatter = [row_of[j] for j in slots]

    def run(params):
        write(pick(params), val_t, scratch)
        gview_t[:] = 0
        for s, row in enumerate(scatter):
            gview_t[row] += scratch[s]

    return run


def _build_batched_matmul(instr, program, plan, grad):
    m, k = instr.a_shape
    k2, n = instr.b_shape
    assert k == k2
    A = plan.value_view(instr.a_buf, (m, k))
    B = plan.value_view(instr.b_buf, (k, n))
    C = plan.value_view(instr.out_buf, (m, n))

    if not grad or not instr.params:

        def run(params):
            np.matmul(A, B, out=C)

        return run

    GA = plan.grad_view(instr.a_buf, (m, k))
    GB = plan.grad_view(instr.b_buf, (k, n))
    GC = plan.grad_view(instr.out_buf, (m, n))
    a_params = program.buffers[instr.a_buf].params
    b_params = program.buffers[instr.b_buf].params
    maps = list(
        zip(
            _param_positions(instr.params, a_params),
            _param_positions(instr.params, b_params),
        )
    )
    # Row-stacked gradient contraction: all rows of each product-rule
    # case run as ONE broadcasted matmul over a (batch, rows, m, n)
    # stack, instead of one gufunc dispatch per row.  Consecutive row
    # ranges (the common case: sorted circuit params split cleanly
    # between the two operands) use zero-copy slice views as ``out=``.
    a_rows, a_idx, b_rows, b_idx, both = _grouped_rows(maps)
    ra, ia = _index(a_rows), _index(a_idx)
    rb, ib = _index(b_rows), _index(b_idx)
    a_direct = isinstance(ra, slice)
    b_direct = isinstance(rb, slice)
    A_b = A[:, None]  # (batch, 1, m, k) broadcast view
    B_b = B[:, None]
    scratch = (
        np.zeros((plan.batch, m, n), dtype=plan.dtype) if both else None
    )

    def run(params):
        np.matmul(A, B, out=C)
        if a_rows:
            if a_direct:
                np.matmul(GA[:, ia], B_b, out=GC[:, ra])
            else:
                GC[:, ra] = np.matmul(GA[:, ia], B_b)
        if b_rows:
            if b_direct:
                np.matmul(A_b, GB[:, ib], out=GC[:, rb])
            else:
                GC[:, rb] = np.matmul(A_b, GB[:, ib])
        for row, x, y in both:
            # Overlapping parameters: product rule.
            np.matmul(GA[:, x], B, out=GC[:, row])
            np.matmul(A, GB[:, y], out=scratch)
            GC[:, row] += scratch

    return run


def _build_batched_elementwise(instr, program, plan, grad, a_shape, b_shape):
    """Shared KRON/HADAMARD batched builder: the two opcodes differ
    only in how their operands are viewed (kron interleaves singleton
    axes so the same broadcast multiply performs the outer product)."""
    A = plan.value_view(instr.a_buf, a_shape)
    B = plan.value_view(instr.b_buf, b_shape)
    out_shape = np.broadcast_shapes(a_shape, b_shape)
    C = plan.value_view(instr.out_buf, out_shape)

    if not grad or not instr.params:

        def run(params):
            np.multiply(A, B, out=C)

        return run

    GA = plan.grad_view(instr.a_buf, a_shape)
    GB = plan.grad_view(instr.b_buf, b_shape)
    GC = plan.grad_view(instr.out_buf, out_shape)
    a_params = program.buffers[instr.a_buf].params
    b_params = program.buffers[instr.b_buf].params
    maps = list(
        zip(
            _param_positions(instr.params, a_params),
            _param_positions(instr.params, b_params),
        )
    )
    rows_a, idx_a, rows_b, idx_b, both = _grouped_rows(maps)
    sa, xa = _index(rows_a), _index(idx_a)
    sb, xb = _index(rows_b), _index(idx_b)
    a_direct = isinstance(sa, slice)
    b_direct = isinstance(sb, slice)
    A_b = A[:, None]
    B_b = B[:, None]
    scratch = (
        np.zeros((plan.batch,) + tuple(out_shape), dtype=plan.dtype)
        if both
        else None
    )

    def run(params):
        np.multiply(A, B, out=C)
        if rows_a:
            if a_direct:
                np.multiply(GA[:, xa], B_b, out=GC[:, sa])
            else:
                GC[:, sa] = GA[:, xa] * B_b
        if rows_b:
            if b_direct:
                np.multiply(A_b, GB[:, xb], out=GC[:, sb])
            else:
                GC[:, sb] = A_b * GB[:, xb]
        for row, x, y in both:
            np.multiply(GA[:, x], B, out=GC[:, row])
            np.multiply(A, GB[:, y], out=scratch)
            GC[:, row] += scratch

    return run


def _build_batched_kron(instr, program, plan, grad):
    ra, ca = instr.a_shape
    rb, cb = instr.b_shape
    return _build_batched_elementwise(
        instr, program, plan, grad, (ra, 1, ca, 1), (1, rb, 1, cb)
    )


def _build_batched_hadamard(instr, program, plan, grad):
    shape = tuple(instr.a_shape)
    return _build_batched_elementwise(
        instr, program, plan, grad, shape, shape
    )


def _build_batched_transpose(instr, program, plan, grad):
    shape = instr.shape
    perm = instr.perm
    src = plan.value_view(instr.a_buf, shape).transpose(
        (0,) + tuple(p + 1 for p in perm)
    )
    dst = plan.value_view(instr.out_buf, src.shape[1:])

    if not grad or not instr.params:

        def run(params):
            np.copyto(dst, src)

        return run

    gsrc_base = plan.grad_view(instr.a_buf, shape)
    gperm = (0, 1) + tuple(p + 2 for p in perm)
    gsrc = gsrc_base.transpose(gperm)
    gdst = plan.grad_view(instr.out_buf, src.shape[1:])

    def run(params):
        np.copyto(dst, src)
        np.copyto(gdst, gsrc)

    return run


# ----------------------------------------------------------------------
# Grouped batched WRITE
# ----------------------------------------------------------------------

def build_batched_write_group(
    instrs: list[Instruction],
    program: Program,
    plan: BatchedMemoryPlan,
    compiled: list[CompiledExpression],
    grad: bool,
):
    """One closure evaluating several WRITE instructions that share one
    JIT'd expression as a *single* batched writer call.

    All ``instrs`` reference the same ``expr_id`` (hence the same
    compiled writer) and carry parameter slots.  The writer runs once
    with an effective batch of ``G * S`` — gate axis times multi-start
    axis — and the result is scattered into each instruction's arena
    views.  That trades two cheap contiguous copies per instruction for
    a G-fold reduction in ufunc dispatch count, which dominates the
    batched WRITE cost at small batch sizes.

    Reordering is safe: WRITE instructions read no buffers and every
    buffer is written exactly once, so hoisting the group to the start
    of the dynamic section cannot change any consumer's input.
    """
    expr = compiled[instrs[0].expr_id]
    S = plan.batch
    G = len(instrs)
    k = expr.num_params
    shape = expr.shape
    write = expr.write_batched

    #: circuit-parameter row per (expression-parameter, gate): fancy-
    #: indexing ``param_rows`` with this yields a (k*G, S) gather that
    #: reshapes for free into the writer's (k, G*S) layout
    gather = np.array(
        [list(i.slots) for i in instrs], dtype=np.intp
    ).T.ravel()

    out_s = np.zeros(shape + (G * S,), dtype=plan.dtype)
    grad_s = (
        np.zeros((k,) + shape + (G * S,), dtype=plan.dtype)
        if grad
        else None
    )
    expr.write_constants(out_s, grad_s)

    copies = []  # (group-scratch view, instruction arena view) pairs
    scatters = []  # (per-slot grad views, gview_t, row map) triples
    for g, instr in enumerate(instrs):
        sl = slice(g * S, (g + 1) * S)
        val_t = np.moveaxis(plan.value_view(instr.out_buf, shape), 0, -1)
        copies.append((out_s[..., sl], val_t))
        if not grad:
            continue
        gview_t = np.moveaxis(
            plan.grad_view(instr.out_buf, shape), [0, 1], [-1, 0]
        )
        sorted_params = program.buffers[instr.out_buf].params
        if tuple(instr.slots) == tuple(sorted_params):
            copies.append((grad_s[..., sl], gview_t))
        else:
            row_of = {p: i for i, p in enumerate(sorted_params)}
            rows = [row_of[j] for j in instr.slots]
            scatters.append((grad_s[..., sl], gview_t, rows))

    def run(params):
        write(params[gather].reshape(k, G * S), out_s, grad_s)
        for src, dst in copies:
            np.copyto(dst, src)
        for src, gview_t, rows in scatters:
            gview_t[:] = 0
            for s, row in enumerate(rows):
                gview_t[row] += src[s]

    if grad_s is None:

        def run_nograd(params):
            write(params[gather].reshape(k, G * S), out_s)
            for src, dst in copies:
                np.copyto(dst, src)

        return run_nograd
    return run
