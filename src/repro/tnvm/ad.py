"""Forward-mode AD instruction specialization (paper section IV-B).

At initialization the TNVM turns each bytecode instruction into a
specialized closure.  The AOT compiler annotated every instruction with
the circuit parameters it depends on; the builders here use those sets
to apply the correct calculus — operations whose operands depend on
*independent* partials propagate each side separately, while operands
with *overlapping* parameters get the product rule.

All views are precomputed, so the hot closures perform no allocation
except one reused scratch matrix per product-rule instruction.
"""

from __future__ import annotations

from operator import itemgetter

import numpy as np

from ..jit.compiled import CompiledExpression
from ..tensornet.bytecode import Instruction, Program
from .buffers import MemoryPlan

__all__ = ["build_closure"]


def build_closure(
    instr: Instruction,
    program: Program,
    plan: MemoryPlan,
    compiled: list[CompiledExpression],
    grad: bool,
):
    """Create the specialized callable for one instruction.

    The returned closure has signature ``run(params)`` where ``params``
    is the flat circuit parameter sequence.
    """
    if instr.opcode == "WRITE":
        return _build_write(instr, program, plan, compiled, grad)
    if instr.opcode == "MATMUL":
        return _build_matmul(instr, program, plan, grad)
    if instr.opcode == "KRON":
        return _build_kron(instr, program, plan, grad)
    if instr.opcode == "HADAMARD":
        return _build_hadamard(instr, program, plan, grad)
    if instr.opcode == "TRANSPOSE":
        return _build_transpose(instr, program, plan, grad)
    raise ValueError(f"unknown opcode {instr.opcode}")


def _param_positions(
    out_params: tuple[int, ...], side_params: tuple[int, ...]
) -> list[int]:
    """For each output parameter, its row in the side's gradient stack
    (or -1 when the side does not depend on it)."""
    index = {p: i for i, p in enumerate(side_params)}
    return [index.get(p, -1) for p in out_params]


# ----------------------------------------------------------------------
# WRITE
# ----------------------------------------------------------------------

def _build_write(instr, program, plan, compiled, grad):
    expr = compiled[instr.expr_id]
    out_spec = program.buffers[instr.out_buf]
    val = plan.value_view(instr.out_buf, expr.shape)
    gview = plan.grad_view(instr.out_buf, expr.shape) if grad else None
    slots = instr.slots
    write = expr.write

    if not slots:
        # Fully constant: runs in the constant section.
        write_constants = expr.write_constants

        def run_const(params):
            write_constants(val)
            write((), val)

        return run_const

    if len(slots) == 1:
        j = slots[0]

        def pick(params, _j=j):
            return (params[_j],)
    else:
        getter = itemgetter(*slots)

        def pick(params, _g=getter):
            return _g(params)

    if gview is None:
        expr.write_constants(val)

        def run(params):
            write(pick(params), val)

        return run

    # Gradient path: the compiled expression produces one gradient row
    # per *slot* (gate-parameter order); the buffer's gradient stack has
    # one row per *sorted unique circuit parameter*.
    sorted_params = out_spec.params
    direct = tuple(slots) == tuple(sorted_params)
    if direct:
        expr.write_constants(val, gview)

        def run(params):
            write(pick(params), val, gview)

        return run

    # Scatter/accumulate path (duplicated or unordered slots): the
    # expression's per-slot gradient rows land in a scratch stack whose
    # constant entries are pre-written once, then accumulate into the
    # buffer's sorted-parameter rows.
    scratch = np.zeros((len(slots),) + expr.shape, dtype=plan.dtype)
    expr.write_constants(val, scratch)
    row_of = {p: i for i, p in enumerate(sorted_params)}
    scatter = [row_of[j] for j in slots]

    def run(params):
        write(pick(params), val, scratch)
        gview[:] = 0
        for s, row in enumerate(scatter):
            gview[row] += scratch[s]

    return run


# ----------------------------------------------------------------------
# MATMUL
# ----------------------------------------------------------------------

def _build_matmul(instr, program, plan, grad):
    m, k = instr.a_shape
    k2, n = instr.b_shape
    assert k == k2
    A = plan.value_view(instr.a_buf, (m, k))
    B = plan.value_view(instr.b_buf, (k, n))
    C = plan.value_view(instr.out_buf, (m, n))

    if not grad or not instr.params:

        def run(params):
            np.matmul(A, B, out=C)

        return run

    GA = plan.grad_view(instr.a_buf, (m, k))
    GB = plan.grad_view(instr.b_buf, (k, n))
    GC = plan.grad_view(instr.out_buf, (m, n))
    a_params = program.buffers[instr.a_buf].params
    b_params = program.buffers[instr.b_buf].params
    ia = _param_positions(instr.params, a_params)
    ib = _param_positions(instr.params, b_params)
    maps = list(zip(ia, ib))
    needs_scratch = any(x >= 0 and y >= 0 for x, y in maps)
    scratch = (
        np.zeros((m, n), dtype=plan.dtype) if needs_scratch else None
    )

    def run(params):
        np.matmul(A, B, out=C)
        for row, (x, y) in enumerate(maps):
            if x >= 0 and y >= 0:
                # Overlapping parameters: product rule.
                np.matmul(GA[x], B, out=GC[row])
                np.matmul(A, GB[y], out=scratch)
                GC[row] += scratch
            elif x >= 0:
                np.matmul(GA[x], B, out=GC[row])
            else:
                np.matmul(A, GB[y], out=GC[row])

    return run


# ----------------------------------------------------------------------
# KRON / HADAMARD (element-wise broadcasting kernels)
# ----------------------------------------------------------------------

def _build_kron(instr, program, plan, grad):
    ra, ca = instr.a_shape
    rb, cb = instr.b_shape
    A = plan.value_view(instr.a_buf, (ra, 1, ca, 1))
    B = plan.value_view(instr.b_buf, (1, rb, 1, cb))
    C = plan.value_view(instr.out_buf, (ra, rb, ca, cb))

    if not grad or not instr.params:

        def run(params):
            np.multiply(A, B, out=C)

        return run

    GA = plan.grad_view(instr.a_buf, (ra, 1, ca, 1))
    GB = plan.grad_view(instr.b_buf, (1, rb, 1, cb))
    GC = plan.grad_view(instr.out_buf, (ra, rb, ca, cb))
    a_params = program.buffers[instr.a_buf].params
    b_params = program.buffers[instr.b_buf].params
    maps = list(
        zip(
            _param_positions(instr.params, a_params),
            _param_positions(instr.params, b_params),
        )
    )
    needs_scratch = any(x >= 0 and y >= 0 for x, y in maps)
    scratch = (
        np.zeros((ra, rb, ca, cb), dtype=plan.dtype)
        if needs_scratch
        else None
    )

    def run(params):
        np.multiply(A, B, out=C)
        for row, (x, y) in enumerate(maps):
            if x >= 0 and y >= 0:
                np.multiply(GA[x], B, out=GC[row])
                np.multiply(A, GB[y], out=scratch)
                GC[row] += scratch
            elif x >= 0:
                np.multiply(GA[x], B, out=GC[row])
            else:
                np.multiply(A, GB[y], out=GC[row])

    return run


def _build_hadamard(instr, program, plan, grad):
    shape = instr.a_shape
    A = plan.value_view(instr.a_buf, shape)
    B = plan.value_view(instr.b_buf, shape)
    C = plan.value_view(instr.out_buf, shape)

    if not grad or not instr.params:

        def run(params):
            np.multiply(A, B, out=C)

        return run

    GA = plan.grad_view(instr.a_buf, shape)
    GB = plan.grad_view(instr.b_buf, shape)
    GC = plan.grad_view(instr.out_buf, shape)
    a_params = program.buffers[instr.a_buf].params
    b_params = program.buffers[instr.b_buf].params
    maps = list(
        zip(
            _param_positions(instr.params, a_params),
            _param_positions(instr.params, b_params),
        )
    )
    needs_scratch = any(x >= 0 and y >= 0 for x, y in maps)
    scratch = np.zeros(shape, dtype=plan.dtype) if needs_scratch else None

    def run(params):
        np.multiply(A, B, out=C)
        for row, (x, y) in enumerate(maps):
            if x >= 0 and y >= 0:
                np.multiply(GA[x], B, out=GC[row])
                np.multiply(A, GB[y], out=scratch)
                GC[row] += scratch
            elif x >= 0:
                np.multiply(GA[x], B, out=GC[row])
            else:
                np.multiply(A, GB[y], out=GC[row])

    return run


# ----------------------------------------------------------------------
# TRANSPOSE (fused reshape-permute-reshape, precomputed strided views)
# ----------------------------------------------------------------------

def _build_transpose(instr, program, plan, grad):
    shape = instr.shape
    perm = instr.perm
    src = plan.value_view(instr.a_buf, shape).transpose(perm)
    dst = plan.value_view(instr.out_buf, src.shape)

    if not grad or not instr.params:

        def run(params):
            np.copyto(dst, src)

        return run

    # Input and output parameter sets are identical for a transpose.
    gsrc_base = plan.grad_view(instr.a_buf, shape)
    gperm = (0,) + tuple(p + 1 for p in perm)
    gsrc = gsrc_base.transpose(gperm)
    gdst = plan.grad_view(instr.out_buf, src.shape)

    def run(params):
        np.copyto(dst, src)
        np.copyto(gdst, gsrc)

    return run
