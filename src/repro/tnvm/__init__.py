"""The Tensor Network Virtual Machine runtime."""

from .buffers import BatchedMemoryPlan, MemoryPlan
from .vm import TNVM, BatchedTNVM, Differentiation

__all__ = [
    "TNVM",
    "BatchedTNVM",
    "Differentiation",
    "MemoryPlan",
    "BatchedMemoryPlan",
]
