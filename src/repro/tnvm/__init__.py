"""The Tensor Network Virtual Machine runtime."""

from .buffers import MemoryPlan
from .vm import TNVM, Differentiation

__all__ = ["TNVM", "Differentiation", "MemoryPlan"]
