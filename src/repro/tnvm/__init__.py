"""The Tensor Network Virtual Machine runtime."""

from ..tensornet.contract import FULL_UNITARY, OutputContract
from .buffers import BatchedMemoryPlan, MemoryPlan
from .fused import (
    BACKENDS,
    FUSED_COLUMN_DIM_MAX,
    FUSED_DIM_MAX,
    FusedKernel,
    bind_fused_kernel,
    generate_fused_kernel,
    resolve_backend,
)
from .vm import TNVM, BatchedTNVM, Differentiation

__all__ = [
    "TNVM",
    "BatchedTNVM",
    "Differentiation",
    "OutputContract",
    "FULL_UNITARY",
    "MemoryPlan",
    "BatchedMemoryPlan",
    "BACKENDS",
    "FUSED_DIM_MAX",
    "FUSED_COLUMN_DIM_MAX",
    "FusedKernel",
    "resolve_backend",
    "generate_fused_kernel",
    "bind_fused_kernel",
]
