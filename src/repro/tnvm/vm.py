"""The Tensor Network Virtual Machine (paper section IV-B).

A TNVM executes the two-section bytecode produced by the AOT compiler.
Instantiation performs the one-time preparatory steps:

1. allocate one contiguous memory region for all intermediate tensors;
2. eagerly JIT-compile every unique QGL expression referenced by the
   ``WRITE`` instructions (through the shared ``ExpressionCache``);
3. specialize every instruction for the requested precision and
   differentiation level, and execute the constant section once.

After that, :meth:`TNVM.evaluate` / :meth:`TNVM.evaluate_with_grad` are
straight sweeps over a list of pre-bound closures — no allocation, no
dispatch, no compilation.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

import numpy as np

from .. import telemetry
from ..jit.cache import ExpressionCache, global_cache
from ..tensornet.bytecode import Program
from ..tensornet.contract import OutputContract
from .ad import build_batched_closure, build_batched_write_group, build_closure
from .buffers import BatchedMemoryPlan, MemoryPlan
from .fused import bind_fused_kernel, fused_kernel_for, resolve_backend

__all__ = ["Differentiation", "TNVM", "BatchedTNVM"]


def _resolve_contract(program: Program, contract) -> OutputContract:
    """The contract this VM runs under, checked against the program."""
    return OutputContract.for_program(program, contract)


def _bind_bra(contract: OutputContract, dim: int, dtype) -> np.ndarray | None:
    """The overlap contract's fixed bra as a ``(dim,)`` device array."""
    if contract.kind != "overlap":
        return None
    bra = np.asarray(contract.bra, dtype=dtype)
    if bra.shape != (dim,):
        raise ValueError(
            f"overlap bra has {bra.shape[0]} amplitudes, "
            f"program dimension is {dim}"
        )
    return bra


class Differentiation(enum.Enum):
    """Requested differentiation level (paper: none/gradient/Hessian)."""

    NONE = 0
    GRADIENT = 1
    HESSIAN = 2  # reserved; see DESIGN.md non-goals


_DTYPES = {
    "f32": np.complex64,
    "f64": np.complex128,
    np.complex64: np.complex64,
    np.complex128: np.complex128,
}


class TNVM:
    """A virtual machine bound to one bytecode program.

    Parameters
    ----------
    program:
        Output of :func:`repro.tensornet.compile_network`.
    precision:
        ``"f32"`` or ``"f64"`` (the generic precision parameter the
        paper highlights in section VI-C).
    diff:
        ``Differentiation.NONE`` or ``Differentiation.GRADIENT``.
    cache:
        Expression cache to pull JIT'd expressions from; defaults to
        the process-wide shared cache.
    backend:
        ``"closures"`` (the per-instruction interpreter loop),
        ``"fused"`` (one megakernel for the whole dynamic section; see
        :mod:`repro.tnvm.fused`), or ``"auto"`` (fused at or below
        ``FUSED_DIM_MAX``, or ``FUSED_COLUMN_DIM_MAX`` for
        column-contract programs).  Both backends are bit-identical.
    contract:
        The :class:`~repro.tensornet.contract.OutputContract` to run
        under.  Defaults to the program's compiled contract; an
        explicit value must match the program's bytecode identity
        (``OVERLAP(bra, j)`` rides a ``COLUMN(j)`` program).

    Output shapes per contract (the one evaluate surface):

    ==============  =====================  ============================
    contract        ``evaluate``           ``evaluate_with_grad``
    ==============  =====================  ============================
    FULL_UNITARY    ``(D, D)``             ``(D, D)``, ``(P, D, D)``
    COLUMN(j)       ``(D,)``               ``(D,)``, ``(P, D)``
    OVERLAP(bra)    complex scalar         scalar, ``(P,)``
    ==============  =====================  ============================
    """

    def __init__(
        self,
        program: Program,
        precision: str = "f64",
        diff: Differentiation = Differentiation.GRADIENT,
        cache: ExpressionCache | None = None,
        backend: str = "closures",
        contract: OutputContract | None = None,
    ):
        if diff is Differentiation.HESSIAN:
            raise NotImplementedError(
                "Hessian-level differentiation is reserved future work"
            )
        try:
            dtype = _DTYPES[precision]
        except KeyError:
            raise ValueError(
                f"precision must be 'f32' or 'f64', got {precision!r}"
            ) from None
        self.program = program
        self.contract = _resolve_contract(program, contract)
        self.precision = "f32" if dtype == np.complex64 else "f64"
        self.diff = diff
        self.num_params = program.num_params
        want_grad = diff is Differentiation.GRADIENT

        # Step 1: one contiguous memory region.
        self.plan = MemoryPlan(program, dtype, want_grad)

        # Step 2: eager JIT of all unique expressions via the cache.
        # (`is None`, not truthiness: an empty cache is falsy via its
        # __len__ but must still be used.)
        if cache is None:
            cache = global_cache()
        self.compiled = [
            cache.get(expr, grad=want_grad and expr.num_params > 0)
            for expr in program.expressions
        ]

        # Step 3: specialize instructions; run the constant section once.
        for instr in program.const_section:
            closure = build_closure(
                instr, program, self.plan, self.compiled, grad=False
            )
            closure(())
        self.backend = resolve_backend(
            backend,
            program.output_shape[0],
            column=self.contract.column_based,
        )
        # Backend selection + sweep counters: bound once here so the
        # hot path below pays one attribute add per sweep, no registry
        # lookup or lock.
        registry = telemetry.metrics()
        registry.counter(f"vm.backend.{self.backend}").add()
        self._sweeps = registry.counter("vm.sweeps")
        self._grad_sweeps = registry.counter("vm.grad_sweeps")
        if self.backend == "fused":
            # The whole dynamic section as ONE generated function (see
            # repro.tnvm.fused); the sweep below degenerates to a
            # single call.
            self.fused_kernel = fused_kernel_for(
                program, self.compiled, want_grad, batched=False
            )
            self._dynamic = [bind_fused_kernel(self.fused_kernel, self.plan)]
        else:
            self.fused_kernel = None
            self._dynamic = [
                build_closure(
                    instr, program, self.plan, self.compiled, grad=want_grad
                )
                for instr in program.dynamic_section
            ]

        dim = program.output_shape[0]
        # Contract-shaped output: column programs propagate a (D,)
        # vector through the dynamic section; full programs a (D, D)
        # matrix.  Overlap additionally reduces against a fixed bra.
        out_shape = (dim,) if self.contract.column_based else (dim, dim)
        self._bra = _bind_bra(self.contract, dim, dtype)
        self._bra_conj = None if self._bra is None else self._bra.conj()
        self._out_view = self.plan.value_view(
            program.output_buffer, out_shape
        )
        out_spec = program.buffers[program.output_buffer]
        #: fancy-index form: one vectorized scatter per sweep instead
        #: of a Python copy loop over gradient rows
        self._out_rows_idx = np.asarray(out_spec.params, dtype=np.intp)
        self._out_grad_view = (
            self.plan.grad_view(program.output_buffer, out_shape)
            if want_grad and out_spec.params
            else None
        )
        self._full_grad = (
            np.zeros((self.num_params,) + out_shape, dtype=dtype)
            if want_grad
            else None
        )

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def evaluate(self, params: Sequence[float] = ()):
        """Compute the program output under the VM's contract.

        Full-unitary contracts return the ``(D, D)`` unitary, column
        contracts the ``(D,)`` column vector — both as *views* into
        the VM's arena, valid until the next ``evaluate`` call (copy to
        retain).  Overlap contracts return the complex scalar
        ``<bra|U e_j>``.
        """
        self._check(params)
        self._sweeps.add()
        for run in self._dynamic:
            run(params)
        if self._bra is not None:
            return complex(np.vdot(self._bra, self._out_view))
        return self._out_view

    def evaluate_with_grad(self, params: Sequence[float] = ()):
        """Compute the contract output and its gradient.

        Shapes per contract: full ``((D, D), (P, D, D))``, column
        ``((D,), (P, D))``, overlap ``(scalar, (P,))`` — with zero
        gradient rows for parameters the output does not depend on.
        Array returns are views/buffers reused across calls.
        """
        if self.diff is not Differentiation.GRADIENT:
            raise RuntimeError(
                "TNVM was instantiated with Differentiation.NONE"
            )
        self._check(params)
        self._grad_sweeps.add()
        for run in self._dynamic:
            run(params)
        if self._out_grad_view is not None:
            self._full_grad[self._out_rows_idx] = self._out_grad_view
        if self._bra is not None:
            overlap = complex(np.vdot(self._bra, self._out_view))
            return overlap, self._full_grad @ self._bra_conj
        return self._out_view, self._full_grad

    def _check(self, params: Sequence[float]) -> None:
        if len(params) != self.num_params:
            raise ValueError(
                f"program expects {self.num_params} parameters, "
                f"got {len(params)}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Size of the preallocated arenas (the paper's 211KB metric)."""
        return self.plan.memory_bytes

    @property
    def dim(self) -> int:
        return self.program.output_shape[0]

    def __repr__(self) -> str:
        return (
            f"<TNVM {self.precision} diff={self.diff.name} "
            f"backend={self.backend} "
            f"contract={self.contract.describe()} "
            f"params={self.num_params} dim={self.dim} "
            f"mem={self.memory_bytes}B>"
        )


class BatchedTNVM:
    """A TNVM that evaluates ``batch`` parameter sets per sweep.

    Semantically equivalent to ``batch`` independent :class:`TNVM`
    instances, but every instruction executes once per sweep as a
    vectorized numpy operation over a leading batch axis, so the
    Python dispatch and kernel-launch overhead of the bytecode loop is
    amortized across all batch elements.  This is the engine behind
    batched multi-start instantiation: all ``S`` LM starts advance
    through one shared arena.

    Parameters match :class:`TNVM` plus ``batch``, the fixed number of
    parameter sets per evaluation.  Output shapes per contract carry a
    leading batch axis:

    ==============  =====================  ============================
    contract        ``evaluate``           ``evaluate_with_grad``
    ==============  =====================  ============================
    FULL_UNITARY    ``(B, D, D)``          ``(B, D, D)``, ``(B, P, D, D)``
    COLUMN(j)       ``(B, D)``             ``(B, D)``, ``(B, P, D)``
    OVERLAP(bra)    ``(B,)``               ``(B,)``, ``(B, P)``
    ==============  =====================  ============================
    """

    def __init__(
        self,
        program: Program,
        batch: int,
        precision: str = "f64",
        diff: Differentiation = Differentiation.GRADIENT,
        cache: ExpressionCache | None = None,
        backend: str = "closures",
        contract: OutputContract | None = None,
    ):
        if diff is Differentiation.HESSIAN:
            raise NotImplementedError(
                "Hessian-level differentiation is reserved future work"
            )
        try:
            dtype = _DTYPES[precision]
        except KeyError:
            raise ValueError(
                f"precision must be 'f32' or 'f64', got {precision!r}"
            ) from None
        self.program = program
        self.contract = _resolve_contract(program, contract)
        self.batch = int(batch)
        self.precision = "f32" if dtype == np.complex64 else "f64"
        self.diff = diff
        self.num_params = program.num_params
        want_grad = diff is Differentiation.GRADIENT

        self.plan = BatchedMemoryPlan(program, dtype, want_grad, self.batch)

        if cache is None:
            cache = global_cache()
        self.compiled = [
            cache.get(expr, grad=want_grad and expr.num_params > 0)
            for expr in program.expressions
        ]

        for instr in program.const_section:
            closure = build_batched_closure(
                instr, program, self.plan, self.compiled, grad=False
            )
            closure(())

        self.backend = resolve_backend(
            backend,
            program.output_shape[0],
            batched=True,
            column=self.contract.column_based,
        )
        registry = telemetry.metrics()
        registry.counter(f"vm.backend.batched.{self.backend}").add()
        self._sweeps = registry.counter("vm.batched_sweeps")
        self._grad_sweeps = registry.counter("vm.batched_grad_sweeps")
        if self.backend == "fused":
            # One megakernel for the whole batched dynamic section
            # (bit-identical to the closure sweep; "auto" does not pick
            # this — the grouped writers below win on batched dispatch).
            self.fused_kernel = fused_kernel_for(
                program, self.compiled, want_grad, batched=True
            )
            self._dynamic = [bind_fused_kernel(self.fused_kernel, self.plan)]
        else:
            self.fused_kernel = None
            self._build_closure_dynamic(program, want_grad)

        dim = program.output_shape[0]
        out_shape = (dim,) if self.contract.column_based else (dim, dim)
        self._bra = _bind_bra(self.contract, dim, dtype)
        self._bra_conj = None if self._bra is None else self._bra.conj()
        self._out_view = self.plan.value_view(
            program.output_buffer, out_shape
        )
        out_spec = program.buffers[program.output_buffer]
        self._out_rows_idx = np.asarray(out_spec.params, dtype=np.intp)
        self._out_grad_view = (
            self.plan.grad_view(program.output_buffer, out_shape)
            if want_grad and out_spec.params
            else None
        )
        self._full_grad = (
            np.zeros(
                (self.batch, self.num_params) + out_shape, dtype=dtype
            )
            if want_grad
            else None
        )

    def _build_closure_dynamic(self, program: Program, want_grad: bool):
        # WRITE instructions sharing one JIT'd expression are grouped
        # into a single batched writer call (effective batch G*S) and
        # hoisted to the front — safe, since WRITEs read no buffers and
        # every buffer is written exactly once.  This collapses the
        # ufunc dispatch overhead that otherwise dominates batched
        # WRITE cost.
        groups: dict[int, list[int]] = {}
        for pos, instr in enumerate(program.dynamic_section):
            if instr.opcode == "WRITE" and instr.slots:
                groups.setdefault(instr.expr_id, []).append(pos)
        grouped_pos = set()
        self._dynamic = []
        for members in groups.values():
            if len(members) < 2:
                continue
            grouped_pos.update(members)
            self._dynamic.append(
                build_batched_write_group(
                    [program.dynamic_section[p] for p in members],
                    program,
                    self.plan,
                    self.compiled,
                    grad=want_grad,
                )
            )
        self._dynamic += [
            build_batched_closure(
                instr, program, self.plan, self.compiled, grad=want_grad
            )
            for pos, instr in enumerate(program.dynamic_section)
            if pos not in grouped_pos
        ]

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def evaluate(self, params: np.ndarray) -> np.ndarray:
        """Compute every batch element's contract output.

        ``params`` has shape ``(batch, num_params)``.  Full contracts
        return a ``(batch, dim, dim)`` view, column contracts a
        ``(batch, dim)`` view — valid until the next ``evaluate``
        call; copy to retain.  Overlap contracts return a fresh
        ``(batch,)`` array of scalars.
        """
        rows = self._check(params)
        self._sweeps.add()
        for run in self._dynamic:
            run(rows)
        if self._bra is not None:
            return self._out_view @ self._bra_conj
        return self._out_view

    def evaluate_with_grad(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute every batch element's contract output and gradient.

        Shapes per contract: full ``((B, D, D), (B, P, D, D))``,
        column ``((B, D), (B, P, D))``, overlap ``((B,), (B, P))``;
        gradient rows for parameters the output does not depend on are
        zero.  Array returns are reused across calls.
        """
        if self.diff is not Differentiation.GRADIENT:
            raise RuntimeError(
                "BatchedTNVM was instantiated with Differentiation.NONE"
            )
        rows = self._check(params)
        self._grad_sweeps.add()
        for run in self._dynamic:
            run(rows)
        if self._out_grad_view is not None:
            self._full_grad[:, self._out_rows_idx] = self._out_grad_view
        if self._bra is not None:
            return (
                self._out_view @ self._bra_conj,
                self._full_grad @ self._bra_conj,
            )
        return self._out_view, self._full_grad

    def _check(self, params: np.ndarray) -> np.ndarray:
        """Validate shape; return the ``(num_params, batch)`` row form
        the batched WRITE closures index by parameter."""
        arr = np.asarray(params, dtype=np.float64)
        if arr.shape != (self.batch, self.num_params):
            raise ValueError(
                f"program expects ({self.batch}, {self.num_params}) "
                f"parameters, got {arr.shape}"
            )
        return np.ascontiguousarray(arr.T)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Size of the preallocated batched arenas."""
        return self.plan.memory_bytes

    @property
    def dim(self) -> int:
        return self.program.output_shape[0]

    def __repr__(self) -> str:
        return (
            f"<BatchedTNVM batch={self.batch} {self.precision} "
            f"diff={self.diff.name} backend={self.backend} "
            f"params={self.num_params} dim={self.dim} "
            f"mem={self.memory_bytes}B>"
        )
