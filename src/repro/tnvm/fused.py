"""Whole-program fused codegen: the TNVM megakernel backend.

The closure backend (:mod:`repro.tnvm.ad`) interprets the dynamic
section as a Python loop over per-instruction closures; at the 2-8
dimensional matrices synthesis templates use, that per-instruction
dispatch — closure call, parameter pick, view indirection — dominates
wall time.  This module extends the expression JIT from per-gate to
per-program: :func:`generate_fused_kernel` lowers a compiled
:class:`~repro.tensornet.bytecode.Program`'s entire dynamic section to
ONE specialized Python function (the operator-fusion move of XLA-style
compilers, standing in for the paper's whole-pipeline LLVM emission):

* ``WRITE`` instructions are inlined as their already-generated CSE'd
  expression bodies — no per-gate function call, with the gate's local
  parameters renamed onto one shared circuit-parameter unpack;
* ``MATMUL``/``KRON``/``HADAMARD``/``TRANSPOSE`` become direct numpy
  calls on views pre-bound in the kernel's setup prologue, with
  ``out=`` targets into the same arena the closure backend uses;
* the forward-mode product-rule cases (the a-only / b-only / overlap
  split of :mod:`repro.tnvm.ad`) are unrolled as straight-line
  statements per gradient row.

Bit-identity contract: for every instruction the generated statements
perform the numerically identical operations, in the identical order,
on the identical arena memory as the closure backend — the fused and
closure backends must agree to the last bit (enforced by
``tests/tnvm/test_fused.py``).

Kernels are plain source text (:class:`FusedKernel`), cached on the
``Program`` they were generated from and shipped with serialized
engines, so worker processes rehydrate a megakernel with ``compile()``
instead of re-fusing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..jit.codegen import generate_inline_write, writer_globals
from ..jit.compiled import CompiledExpression
from ..tensornet.bytecode import Instruction, Program
from .ad import _grouped_rows, _index, _param_positions
from .buffers import BatchedMemoryPlan, MemoryPlan

__all__ = [
    "BACKENDS",
    "FUSED_DIM_MAX",
    "FUSED_COLUMN_DIM_MAX",
    "FusedKernel",
    "resolve_backend",
    "generate_fused_kernel",
    "bind_fused_kernel",
    "fused_kernel_for",
    "cached_fused_kernels",
    "attach_fused_kernels",
]

#: Valid values for the TNVM execution backend knob.
BACKENDS = ("closures", "fused", "auto")

#: ``backend="auto"`` fuses scalar VMs at or below this output
#: dimension.  Small programs are interpreter-overhead-bound (the
#: fused win); above it the numpy kernels themselves dominate and the
#: closure loop's flexibility costs nothing.  8 covers the 1-3 qubit
#: templates every synthesis pass instantiates by the thousands.
FUSED_DIM_MAX = 8

#: ``backend="auto"``'s fusion ceiling for *column-contract* programs.
#: A column program's contractions are matrix-vector — ``O(D)`` per
#: gate instead of ``O(D^2)`` — so per-instruction dispatch stays the
#: dominant cost far past :data:`FUSED_DIM_MAX`: a D=64 matvec moves
#: the same data as a D=8 matmul.
FUSED_COLUMN_DIM_MAX = 64

_P = "    "  # prologue indent (inside make_fused)
_H = "        "  # hot-body indent (inside fused_run)


def resolve_backend(
    backend: str, dim: int, batched: bool = False, column: bool = False
) -> str:
    """Collapse ``"auto"`` to a concrete backend.

    Scalar VMs fuse at or below :data:`FUSED_DIM_MAX` — or
    :data:`FUSED_COLUMN_DIM_MAX` when ``column`` marks the program as
    column-contract (the auto selection is contract-aware: vector
    propagation stays dispatch-bound at much larger dimensions).
    Batched VMs stay on the closure backend under ``"auto"`` — its
    grouped WRITE writers already evaluate every same-expression gate
    as one ``G*S``-stacked ufunc call, which inlined per-gate vector
    stores measurably undo (~0.7x on gate-heavy templates).  An
    explicit ``backend="fused"`` still forces the megakernel on either
    VM.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    if backend == "auto":
        if batched:
            return "closures"
        limit = FUSED_COLUMN_DIM_MAX if column else FUSED_DIM_MAX
        return "fused" if dim <= limit else "closures"
    return backend


@dataclass(frozen=True)
class FusedKernel:
    """One generated megakernel: source text plus codegen metadata.

    The source defines ``make_fused(values, grads, dtype)`` (scalar) or
    ``make_fused(values, grads, dtype, B)`` (batched) — a factory that
    binds arena views once and returns the hot ``fused_run(params)``
    function.  The object is a plain value: pickling it ships the
    source, and :func:`bind_fused_kernel` rehydrates with ``compile()``
    — no re-fusing, no expression pipeline.
    """

    source: str
    grad: bool
    batched: bool
    #: numpy-call dispatches per sweep (contractions + scatter stores)
    num_numpy_calls: int
    #: inlined scalar store statements per sweep (WRITE bodies)
    num_write_stores: int
    #: instructions covered (the closure backend's dispatch count)
    num_instructions: int


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


class _FusedEmitter:
    """Accumulates the prologue/hot statement streams for one kernel."""

    def __init__(self, program: Program, grad: bool, batched: bool):
        self.program = program
        self.grad = grad
        self.batched = batched
        self.pro: list[str] = []
        self.hot: list[str] = []
        self.used_atoms: set[str] = set()
        self.num_numpy_calls = 0
        self.num_write_stores = 0

    # -- view-binding helpers ------------------------------------------
    def _shape(self, shape) -> str:
        dims = ", ".join(str(s) for s in shape)
        return f"B, {dims}" if self.batched else dims

    def value(self, buf: int, shape) -> str:
        return f"values[{buf}].reshape({self._shape(shape)})"

    def gradstack(self, buf: int, shape) -> str:
        n = len(self.program.buffers[buf].params)
        dims = ", ".join(str(s) for s in shape)
        if self.batched:
            return f"grads[{buf}].reshape(B, {n}, {dims})"
        return f"grads[{buf}].reshape({n}, {dims})"

    def np_call(self, line: str) -> None:
        self.hot.append(f"{_H}{line}")
        self.num_numpy_calls += 1

    # -- WRITE ---------------------------------------------------------
    def emit_write(
        self, n: int, instr: Instruction, expr: CompiledExpression
    ) -> None:
        shape = expr.shape
        u_entries, g_entries = expr.entries
        use_grad = self.grad and bool(g_entries) and bool(instr.slots)
        vname = f"i{n}_v"
        if self.batched:
            # Trailing-batch view: every generated ``out[i, j]`` store
            # assigns a length-B vector, exactly like ``write_batched``.
            self.pro.append(
                f"{_P}{vname} = np.moveaxis("
                f"{self.value(instr.out_buf, shape)}, 0, -1)"
            )
        else:
            self.pro.append(f"{_P}{vname} = {self.value(instr.out_buf, shape)}")

        scatter = None
        gname = None
        if use_grad:
            sorted_params = self.program.buffers[instr.out_buf].params
            gview = f"i{n}_g"
            if self.batched:
                self.pro.append(
                    f"{_P}{gview} = np.moveaxis("
                    f"{self.gradstack(instr.out_buf, shape)}, 0, -1)"
                )
            else:
                self.pro.append(
                    f"{_P}{gview} = {self.gradstack(instr.out_buf, shape)}"
                )
            if tuple(instr.slots) == tuple(sorted_params):
                gname = gview
            else:
                # Scatter/accumulate path (duplicated or unordered
                # slots): per-slot rows land in a scratch stack, then
                # accumulate into the sorted-parameter rows.
                gname = f"i{n}_s"
                dims = ", ".join(str(s) for s in shape)
                tail = ", B" if self.batched else ""
                self.pro.append(
                    f"{_P}{gname} = np.zeros(({len(instr.slots)}, "
                    f"{dims}{tail}), dtype=dtype)"
                )
                row_of = {p: i for i, p in enumerate(sorted_params)}
                scatter = (gview, [row_of[j] for j in instr.slots])

        var_atoms = {
            name: f"p{instr.slots[k]}"
            for k, name in enumerate(expr.matrix.params)
        }
        inline = generate_inline_write(
            u_entries,
            g_entries if use_grad else [],
            expr.matrix.params,
            var_atoms,
            vname,
            gname,
            temp_prefix=f"i{n}_t",
            indent=_H,
            batched=self.batched,
        )
        self.pro.extend(f"{_P}{line}" for line in inline.const_value_lines)
        self.pro.extend(f"{_P}{line}" for line in inline.const_grad_lines)
        self.hot.extend(inline.hot_lines)
        self.used_atoms |= inline.used_atoms
        self.num_write_stores += inline.num_dynamic
        if scatter is not None:
            gview, rows = scatter
            self.np_call(f"{gview}[:] = 0")
            for s, row in enumerate(rows):
                self.np_call(f"{gview}[{row}] += {gname}[{s}]")

    # -- MATMUL / KRON / HADAMARD --------------------------------------
    def emit_product(self, n: int, instr: Instruction) -> None:
        """Shared contraction emitter; the three opcodes differ only in
        the ufunc and how their operands are viewed (KRON interleaves
        singleton axes so a broadcast multiply is the outer product)."""
        if instr.opcode == "MATMUL":
            m, k = instr.a_shape
            _, n2 = instr.b_shape
            a_shape, b_shape, out_shape = (m, k), (k, n2), (m, n2)
            ufunc = "np.matmul"
        elif instr.opcode == "KRON":
            ra, ca = instr.a_shape
            rb, cb = instr.b_shape
            a_shape, b_shape = (ra, 1, ca, 1), (1, rb, 1, cb)
            out_shape = (ra, rb, ca, cb)
            ufunc = "np.multiply"
        else:  # HADAMARD
            a_shape = b_shape = out_shape = tuple(instr.a_shape)
            ufunc = "np.multiply"

        a, b, c = f"i{n}_a", f"i{n}_b", f"i{n}_c"
        self.pro.append(f"{_P}{a} = {self.value(instr.a_buf, a_shape)}")
        self.pro.append(f"{_P}{b} = {self.value(instr.b_buf, b_shape)}")
        self.pro.append(f"{_P}{c} = {self.value(instr.out_buf, out_shape)}")
        self.np_call(f"{ufunc}({a}, {b}, out={c})")

        if not self.grad or not instr.params:
            return
        a_params = self.program.buffers[instr.a_buf].params
        b_params = self.program.buffers[instr.b_buf].params
        maps = list(
            zip(
                _param_positions(instr.params, a_params),
                _param_positions(instr.params, b_params),
            )
        )
        GA, GB, GC = f"i{n}_GA", f"i{n}_GB", f"i{n}_GC"
        if any(x >= 0 for x, _ in maps):
            self.pro.append(
                f"{_P}{GA} = {self.gradstack(instr.a_buf, a_shape)}"
            )
        if any(y >= 0 for _, y in maps):
            self.pro.append(
                f"{_P}{GB} = {self.gradstack(instr.b_buf, b_shape)}"
            )
        self.pro.append(
            f"{_P}{GC} = {self.gradstack(instr.out_buf, out_shape)}"
        )
        scr = f"i{n}_scr"
        needs_scratch = any(x >= 0 and y >= 0 for x, y in maps)
        if needs_scratch:
            dims = ", ".join(str(s) for s in out_shape)
            lead = "B, " if self.batched else ""
            self.pro.append(
                f"{_P}{scr} = np.zeros(({lead}{dims}), dtype=dtype)"
            )
        if self.batched:
            self._emit_batched_product_grad(
                n, ufunc, maps, a, b, GA, GB, GC, scr
            )
        else:
            self._emit_scalar_product_grad(
                n, ufunc, maps, a, b, GA, GB, GC, scr
            )

    def _scalar_idx(self, n: int, name: str, ix: list[int]):
        """An index expression for a row list: ``start:stop`` when
        consecutive (zero-copy view, valid ``out=`` target), else a
        prologue-bound fancy-index array."""
        sl = _index(ix)
        if isinstance(sl, slice):
            return f"{sl.start}:{sl.stop}", True
        arr = f"i{n}_{name}"
        vals = ", ".join(str(v) for v in ix)
        self.pro.append(f"{_P}{arr} = np.asarray([{vals}], dtype=np.intp)")
        return arr, False

    def _emit_scalar_product_grad(
        self, n, ufunc, maps, a, b, GA, GB, GC, scr
    ) -> None:
        # Row-stacked gradient contraction: all rows of each product-
        # rule case run as ONE call over a (rows, ...) stack — the
        # numpy-dispatch collapse that makes fusion beat the closure
        # loop (which pays one call per row).  Stacked and per-row
        # contractions are bit-identical: the gufunc applies the same
        # 2-D kernel to each slice, and every gradient row reads only
        # operand buffers (never other rows), so case order is free.
        a_rows, a_idx, b_rows, b_idx, both = _grouped_rows(maps)
        if a_rows:
            ra, a_direct = self._scalar_idx(n, "ra", a_rows)
            ia, _ = self._scalar_idx(n, "ia", a_idx)
            if a_direct:
                self.np_call(f"{ufunc}({GA}[{ia}], {b}, out={GC}[{ra}])")
            elif ufunc == "np.matmul":
                self.np_call(f"{GC}[{ra}] = np.matmul({GA}[{ia}], {b})")
            else:
                self.np_call(f"{GC}[{ra}] = {GA}[{ia}] * {b}")
        if b_rows:
            rb, b_direct = self._scalar_idx(n, "rb", b_rows)
            ib, _ = self._scalar_idx(n, "ib", b_idx)
            if b_direct:
                self.np_call(f"{ufunc}({a}, {GB}[{ib}], out={GC}[{rb}])")
            elif ufunc == "np.matmul":
                self.np_call(f"{GC}[{rb}] = np.matmul({a}, {GB}[{ib}])")
            else:
                self.np_call(f"{GC}[{rb}] = {a} * {GB}[{ib}]")
        for row, x, y in both:
            # Overlapping parameters: product rule, via the scratch.
            self.np_call(f"{ufunc}({GA}[{x}], {b}, out={GC}[{row}])")
            self.np_call(f"{ufunc}({a}, {GB}[{y}], out={scr})")
            self.np_call(f"{GC}[{row}] += {scr}")

    def _emit_batched_product_grad(
        self, n, ufunc, maps, a, b, GA, GB, GC, scr
    ) -> None:
        # Mirror the closure backend's row-stacked contraction blocks
        # verbatim: one broadcasted call per product-rule case, slices
        # when row ranges are consecutive, fancy indices otherwise.
        a_rows, a_idx, b_rows, b_idx, both = _grouped_rows(maps)
        idx_expr = lambda name, ix: self._scalar_idx(n, name, ix)  # noqa: E731
        ab, bb = f"i{n}_ab", f"i{n}_bb"
        if a_rows or b_rows:
            if a_rows:
                self.pro.append(f"{_P}{bb} = {b}[:, None]")
            if b_rows:
                self.pro.append(f"{_P}{ab} = {a}[:, None]")
        if a_rows:
            ra, a_direct = idx_expr("ra", a_rows)
            ia, _ = idx_expr("ia", a_idx)
            if a_direct:
                self.np_call(
                    f"{ufunc}({GA}[:, {ia}], {bb}, out={GC}[:, {ra}])"
                )
            elif ufunc == "np.matmul":
                self.np_call(f"{GC}[:, {ra}] = np.matmul({GA}[:, {ia}], {bb})")
            else:
                self.np_call(f"{GC}[:, {ra}] = {GA}[:, {ia}] * {bb}")
        if b_rows:
            rb, b_direct = idx_expr("rb", b_rows)
            ib, _ = idx_expr("ib", b_idx)
            if b_direct:
                self.np_call(
                    f"{ufunc}({ab}, {GB}[:, {ib}], out={GC}[:, {rb}])"
                )
            elif ufunc == "np.matmul":
                self.np_call(f"{GC}[:, {rb}] = np.matmul({ab}, {GB}[:, {ib}])")
            else:
                self.np_call(f"{GC}[:, {rb}] = {ab} * {GB}[:, {ib}]")
        for row, x, y in both:
            self.np_call(f"{ufunc}({GA}[:, {x}], {b}, out={GC}[:, {row}])")
            self.np_call(f"{ufunc}({a}, {GB}[:, {y}], out={scr})")
            self.np_call(f"{GC}[:, {row}] += {scr}")

    # -- TRANSPOSE -----------------------------------------------------
    def emit_transpose(self, n: int, instr: Instruction) -> None:
        shape = tuple(instr.shape)
        perm = tuple(instr.perm)
        out_shape = tuple(shape[p] for p in perm)
        src, dst = f"i{n}_src", f"i{n}_dst"
        if self.batched:
            vperm = (0,) + tuple(p + 1 for p in perm)
        else:
            vperm = perm
        self.pro.append(
            f"{_P}{src} = {self.value(instr.a_buf, shape)}"
            f".transpose({vperm!r})"
        )
        self.pro.append(f"{_P}{dst} = {self.value(instr.out_buf, out_shape)}")
        self.np_call(f"np.copyto({dst}, {src})")
        if not self.grad or not instr.params:
            return
        gsrc, gdst = f"i{n}_gsrc", f"i{n}_gdst"
        if self.batched:
            gperm = (0, 1) + tuple(p + 2 for p in perm)
        else:
            gperm = (0,) + tuple(p + 1 for p in perm)
        self.pro.append(
            f"{_P}{gsrc} = {self.gradstack(instr.a_buf, shape)}"
            f".transpose({gperm!r})"
        )
        self.pro.append(
            f"{_P}{gdst} = {self.gradstack(instr.out_buf, out_shape)}"
        )
        self.np_call(f"np.copyto({gdst}, {gsrc})")


def generate_fused_kernel(
    program: Program,
    compiled: list[CompiledExpression],
    grad: bool,
    batched: bool,
) -> FusedKernel:
    """Lower ``program``'s dynamic section to one megakernel source.

    ``compiled`` is the VM's expression list (one entry per
    ``program.expressions``, with gradients exactly when the VM wants
    them) — the inlined WRITE bodies are re-emitted from the same
    simplified entry triples the standalone writers were generated
    from, so the fused function is bit-identical to the closure sweep.
    """
    emitter = _FusedEmitter(program, grad, batched)
    for n, instr in enumerate(program.dynamic_section):
        if instr.opcode == "WRITE":
            emitter.emit_write(n, instr, compiled[instr.expr_id])
        elif instr.opcode in ("MATMUL", "KRON", "HADAMARD"):
            emitter.emit_product(n, instr)
        elif instr.opcode == "TRANSPOSE":
            emitter.emit_transpose(n, instr)
        else:
            raise ValueError(f"unknown opcode {instr.opcode}")

    args = "values, grads, dtype, B" if batched else "values, grads, dtype"
    lines = [f"def make_fused({args}):"]
    lines.extend(emitter.pro)
    lines.append(f"{_P}def fused_run(params):")
    unpack = sorted(
        (int(atom[1:]) for atom in emitter.used_atoms if atom[1:].isdigit()),
    )
    lines.extend(f"{_H}p{k} = params[{k}]" for k in unpack)
    if emitter.hot:
        lines.extend(emitter.hot)
    elif not unpack:
        lines.append(f"{_H}pass")
    lines.append(f"{_P}return fused_run")
    return FusedKernel(
        source="\n".join(lines) + "\n",
        grad=grad,
        batched=batched,
        num_numpy_calls=emitter.num_numpy_calls,
        num_write_stores=emitter.num_write_stores,
        num_instructions=len(program.dynamic_section),
    )


# ----------------------------------------------------------------------
# Binding and kernel caching
# ----------------------------------------------------------------------


def bind_fused_kernel(kernel: FusedKernel, plan) -> callable:
    """Compile ``kernel``'s source and bind it to a memory plan.

    This is the cheap half of fusion (exactly like
    :func:`~repro.jit.codegen.compile_source` for per-gate writers): a
    kernel shipped from another process rehydrates here without
    re-walking the program.  Returns the hot ``fused_run(params)``.

    Under ``REPRO_VERIFY=1`` the kernel source is linted by
    :mod:`repro.analysis` before it is ``exec``-ed — this is the trust
    boundary where shipped source becomes running code.
    """
    from ..analysis import maybe_lint_kernel

    maybe_lint_kernel(kernel, subject="fused kernel (bind)")
    namespace = writer_globals(kernel.batched)
    namespace["np"] = np
    tag = "batched" if kernel.batched else "scalar"
    code = compile(kernel.source, f"<fused-{tag}>", "exec")
    exec(code, namespace)
    factory = namespace["make_fused"]
    if kernel.batched:
        if not isinstance(plan, BatchedMemoryPlan):
            raise TypeError("batched kernel needs a BatchedMemoryPlan")
        return factory(plan.values, plan.grads, plan.dtype, plan.batch)
    if not isinstance(plan, MemoryPlan):
        raise TypeError("scalar kernel needs a MemoryPlan")
    return factory(plan.values, plan.grads, plan.dtype)


def fused_kernel_for(
    program: Program,
    compiled: list[CompiledExpression],
    grad: bool,
    batched: bool,
) -> FusedKernel:
    """The (grad, batched) kernel for ``program``, generated once.

    Kernels are cached on the program instance, so every VM bound to
    one compiled program — e.g. a batched engine's per-batch-size VMs —
    shares a single generation pass, and kernels attached by
    :func:`attach_fused_kernels` (engine rehydration) short-circuit
    generation entirely.
    """
    cache = program.__dict__.setdefault("_fused_kernels", {})
    key = (bool(grad), bool(batched))
    kernel = cache.get(key)
    if kernel is None:
        with telemetry.tracer().span(
            "fuse.codegen", category="fuse",
            dim=program.dim, grad=bool(grad), batched=bool(batched),
        ):
            kernel = generate_fused_kernel(program, compiled, grad, batched)
        telemetry.metrics().counter("fuse.kernels_generated").add()
        cache[key] = kernel
    return kernel


def cached_fused_kernels(program: Program) -> dict:
    """The kernels generated for ``program`` so far (may be empty)."""
    return dict(program.__dict__.get("_fused_kernels", {}))


def attach_fused_kernels(program: Program, kernels) -> None:
    """Seed ``program``'s kernel cache (rehydration path).

    ``kernels`` maps ``(grad, batched)`` to :class:`FusedKernel`;
    existing entries win (they may already be bound by live VMs).
    """
    cache = program.__dict__.setdefault("_fused_kernels", {})
    for key, kernel in dict(kernels).items():
        cache.setdefault(tuple(key), kernel)
