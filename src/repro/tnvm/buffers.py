"""Memory planning for the TNVM.

The TNVM allocates a single contiguous complex arena for all tensor
values and a second arena for all forward-mode gradient stacks (paper
section IV-B: "a single, contiguous memory region to house all
intermediate tensors, eliminating dynamic allocation overhead during
execution").  Each abstract buffer from the bytecode maps to an offset
slice; views are materialized once at initialization.
"""

from __future__ import annotations

import numpy as np

from ..tensornet.bytecode import Program

__all__ = ["MemoryPlan", "BatchedMemoryPlan"]


class MemoryPlan:
    """Arena layout and per-buffer views for one TNVM instance."""

    def __init__(self, program: Program, dtype: np.dtype, grad: bool):
        self.dtype = np.dtype(dtype)
        value_sizes = [spec.size for spec in program.buffers]
        value_offsets = np.concatenate(([0], np.cumsum(value_sizes)))
        self.value_arena = np.zeros(int(value_offsets[-1]), dtype=self.dtype)
        #: flat 1-D value view per buffer id
        self.values: list[np.ndarray] = [
            self.value_arena[value_offsets[i]: value_offsets[i + 1]]
            for i in range(len(value_sizes))
        ]

        #: flat 2-D (n_params, size) gradient stack per buffer id, or
        #: None for constant/no-gradient buffers
        self.grads: list[np.ndarray | None] = [None] * len(value_sizes)
        grad_bytes = 0
        if grad:
            grad_sizes = [
                len(spec.params) * spec.size if spec.params else 0
                for spec in program.buffers
            ]
            grad_offsets = np.concatenate(([0], np.cumsum(grad_sizes)))
            self.grad_arena = np.zeros(
                int(grad_offsets[-1]), dtype=self.dtype
            )
            for i, spec in enumerate(program.buffers):
                if spec.params:
                    flat = self.grad_arena[
                        grad_offsets[i]: grad_offsets[i + 1]
                    ]
                    self.grads[i] = flat.reshape(
                        len(spec.params), spec.size
                    )
            grad_bytes = self.grad_arena.nbytes
        else:
            self.grad_arena = np.zeros(0, dtype=self.dtype)

        self.memory_bytes = self.value_arena.nbytes + grad_bytes

    def value_view(self, buffer_id: int, shape: tuple[int, ...]) -> np.ndarray:
        """A reshaped view of a buffer's value storage."""
        return self.values[buffer_id].reshape(shape)

    def grad_view(
        self, buffer_id: int, shape: tuple[int, ...]
    ) -> np.ndarray | None:
        """A reshaped view of a buffer's gradient stack.

        The leading axis runs over the buffer's parameter set (sorted
        circuit-parameter order from the bytecode annotation).
        """
        g = self.grads[buffer_id]
        if g is None:
            return None
        return g.reshape((g.shape[0],) + tuple(shape))


class BatchedMemoryPlan:
    """Arena layout for a batched TNVM: one copy of every buffer per
    batch element, so ``S`` multi-start parameter sets evaluate as one
    vectorized sweep.

    Layout is buffer-major: each buffer's ``(batch, size)`` block is
    contiguous, which keeps every batched contraction (``np.matmul``
    over a leading batch axis, broadcast multiplies) on dense memory.
    """

    def __init__(
        self, program: Program, dtype: np.dtype, grad: bool, batch: int
    ):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.dtype = np.dtype(dtype)
        self.batch = batch
        value_sizes = [batch * spec.size for spec in program.buffers]
        value_offsets = np.concatenate(([0], np.cumsum(value_sizes)))
        self.value_arena = np.zeros(int(value_offsets[-1]), dtype=self.dtype)
        #: (batch, size) value view per buffer id
        self.values: list[np.ndarray] = [
            self.value_arena[
                value_offsets[i]: value_offsets[i + 1]
            ].reshape(batch, -1)
            for i in range(len(value_sizes))
        ]

        #: (batch, n_params, size) gradient stack per buffer id, or
        #: None for constant/no-gradient buffers
        self.grads: list[np.ndarray | None] = [None] * len(value_sizes)
        grad_bytes = 0
        if grad:
            grad_sizes = [
                batch * len(spec.params) * spec.size if spec.params else 0
                for spec in program.buffers
            ]
            grad_offsets = np.concatenate(([0], np.cumsum(grad_sizes)))
            self.grad_arena = np.zeros(
                int(grad_offsets[-1]), dtype=self.dtype
            )
            for i, spec in enumerate(program.buffers):
                if spec.params:
                    flat = self.grad_arena[
                        grad_offsets[i]: grad_offsets[i + 1]
                    ]
                    self.grads[i] = flat.reshape(
                        batch, len(spec.params), spec.size
                    )
            grad_bytes = self.grad_arena.nbytes
        else:
            self.grad_arena = np.zeros(0, dtype=self.dtype)

        self.memory_bytes = self.value_arena.nbytes + grad_bytes

    def value_view(self, buffer_id: int, shape: tuple[int, ...]) -> np.ndarray:
        """A ``(batch,) + shape`` view of a buffer's value storage."""
        return self.values[buffer_id].reshape((self.batch,) + tuple(shape))

    def grad_view(
        self, buffer_id: int, shape: tuple[int, ...]
    ) -> np.ndarray | None:
        """A ``(batch, n_params) + shape`` view of a gradient stack."""
        g = self.grads[buffer_id]
        if g is None:
            return None
        return g.reshape((self.batch, g.shape[1]) + tuple(shape))
