#!/usr/bin/env python
"""The paper's Listing 4: building DTC circuits with expression caching.

Defines RX/RZ/RZZ in QGL inside the constructor, caches them on the
circuit, and appends by integer reference — then times construction
against the traditional per-append-validated baseline (the Figure 4
right panel, in miniature).

Run:  python examples/dtc_construction.py
"""

import math
import time

from repro import QuditCircuit, UnitaryExpression
from repro.baseline import build_dtc_circuit_baseline

PI = math.pi


def build_dtc_circuit(n: int) -> QuditCircuit:
    """Verbatim analogue of the paper's Listing 4."""
    # Define gates using QGL's natural syntax.
    rx = UnitaryExpression(
        """RX(theta) {
            [[cos(theta/2), ~i*sin(theta/2)],
             [~i*sin(theta/2), cos(theta/2)]]
        }"""
    )
    rzz = UnitaryExpression(
        """RZZ(theta) {
            [[e^(~i*theta/2), 0, 0, 0],
             [0, e^(i*theta/2), 0, 0],
             [0, 0, e^(i*theta/2), 0],
             [0, 0, 0, e^(~i*theta/2)]]
        }"""
    )
    rz = UnitaryExpression(
        """RZ(theta) {
            [[e^(~i*theta/2), 0],
             [0, e^(i*theta/2)]]
        }"""
    )

    # Initialize circuit and cache the expressions.
    circ = QuditCircuit.pure([2] * n)
    rx_ref = circ.cache_operation(rx)
    rz_ref = circ.cache_operation(rz)
    rzz_ref = circ.cache_operation(rzz)

    # Build the circuit.
    for _ in range(1):
        for i in range(n):
            circ.append_ref_constant(rx_ref, i, (0.95 * PI,))
        for start in (0, 1):
            for i in range(start, n - 1, 2):
                circ.append_ref_constant(rzz_ref, (i, i + 1), (PI / 8,))
        for i in range(n):
            circ.append_ref_constant(rz_ref, i, (0.3,))
    return circ


def main() -> None:
    print(f"{'n':>6} {'openqudit(s)':>13} {'baseline(s)':>12} "
          f"{'speedup':>8}")
    for n in (16, 64, 256, 512):
        t0 = time.perf_counter()
        circ = build_dtc_circuit(n)
        fast = time.perf_counter() - t0

        t0 = time.perf_counter()
        build_dtc_circuit_baseline(n, 1)
        slow = time.perf_counter() - t0
        print(f"{n:>6} {fast:>13.4f} {slow:>12.4f} "
              f"{slow / fast:>7.1f}x   ({len(circ)} gates)")


if __name__ == "__main__":
    main()
