#!/usr/bin/env python
"""Extensibility demo: add a brand-new gate and synthesize with it.

The paper's motivating scenario (section II-C): a domain expert wants
their compiler to target a new native instruction.  In a traditional
framework that means writing a gate class with a hand-derived
analytical gradient (Listing 1).  With QGL it is one expression — the
compiler derives the gradient symbolically, simplifies it with
e-graphs, JIT-compiles it, and the instantiation engine can use it
immediately.

Here the new instruction is a Givens rotation with a tunable phase
(an "fSim-like" gate common on superconducting hardware).

Run:  python examples/custom_gate_synthesis.py
"""

import numpy as np

from repro import Instantiater, QuditCircuit, UnitaryExpression, gates
from repro.utils import hilbert_schmidt_infidelity, random_unitary


def main() -> None:
    # A new two-qubit instruction, defined symbolically in one shot.
    fsim_like = UnitaryExpression(
        """FSIM(theta, phi) {
            [[1, 0, 0, 0],
             [0, cos(theta), ~i*sin(theta), 0],
             [0, ~i*sin(theta), cos(theta), 0],
             [0, 0, 0, e^(~i*phi)]]
        }"""
    )
    print(f"new instruction: {fsim_like.name}"
          f"({', '.join(fsim_like.params)})")

    # Peek at what the expression JIT produced for it: the analytical
    # gradient was derived and simplified automatically.
    compiled = fsim_like.compiled(grad=True)
    print(f"JIT cost (Table I units): {compiled.total_cost:.1f}")
    print(f"dynamic entries: {compiled.num_dynamic_entries}, "
          f"constant entries: {compiled.num_constant_entries}")

    # Build a QSearch-style ansatz over the new gate set.
    circ = QuditCircuit.pure([2, 2])
    u3_ref = circ.cache_operation(gates.u3())
    fsim_ref = circ.cache_operation(fsim_like)
    circ.append_ref(u3_ref, 0)
    circ.append_ref(u3_ref, 1)
    circ.append_ref(fsim_ref, (0, 1))
    circ.append_ref(u3_ref, 0)
    circ.append_ref(u3_ref, 1)
    circ.append_ref(fsim_ref, (0, 1))
    circ.append_ref(u3_ref, 0)
    circ.append_ref(u3_ref, 1)
    circ.append_ref(fsim_ref, (0, 1))
    circ.append_ref(u3_ref, 0)
    circ.append_ref(u3_ref, 1)
    print(f"\nansatz: {len(circ)} gates, {circ.num_params} parameters")

    # Synthesize a Haar-random two-qubit unitary with it.
    target = random_unitary(4, rng=42)
    engine = Instantiater(circ)
    print(f"AOT compile + TNVM init: {engine.aot_seconds * 1e3:.1f} ms")

    result = engine.instantiate(target, starts=8, rng=0)
    print(f"\ninstantiation: {result.starts_used} start(s), "
          f"{result.total_evaluations} evaluations, "
          f"{result.optimize_seconds * 1e3:.1f} ms")
    print(f"final infidelity: {result.infidelity:.2e} "
          f"(success: {result.success})")

    synthesized = circ.get_unitary(result.params)
    check = hilbert_schmidt_infidelity(target, synthesized)
    print(f"independent check of Eq. (1): {check:.2e}")


if __name__ == "__main__":
    main()
