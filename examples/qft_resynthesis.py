#!/usr/bin/env python
"""Resynthesis: compress a QFT block into the native U3+CNOT gate set.

This is the compiler workload OpenQudit accelerates (section II-B):
a synthesis pass hands the instantiation engine a target unitary (here
the 2-qubit QFT) and an ansatz in the hardware's native gate set; the
engine finds parameters reproducing the target to machine precision.
The paper's multi-start short-circuiting is visible in the printed
start counts.

Run:  python examples/qft_resynthesis.py
"""

import numpy as np

from repro import Instantiater
from repro.circuit import build_qft_circuit, build_qsearch_ansatz
from repro.utils import Statevector


def main() -> None:
    # The target: a 2-qubit QFT (H, controlled-phase, swap).
    qft = build_qft_circuit(2)
    target = qft.get_unitary(())
    print(f"target: QFT-2, {len(qft)} gates "
          f"({', '.join(f'{k}x{v}' for k, v in qft.gate_counts().items())})")

    # The ansatz: the native U3 + CNOT gate set, Figure 5 style.
    for depth in (1, 2, 3):
        ansatz = build_qsearch_ansatz(2, depth, 2)
        engine = Instantiater(ansatz)
        result = engine.instantiate(target, starts=8, rng=3)
        status = "FOUND" if result.success else "no solution"
        print(f"depth {depth}: {ansatz.gate_counts().get('CX', 0)} "
              f"CNOTs, infidelity {result.infidelity:.2e} -> {status} "
              f"({result.starts_used} starts, "
              f"{result.optimize_seconds:.2f}s)")
        if result.success:
            best = ansatz, result
            break

    # Verify the synthesized circuit behaves like the QFT on states.
    ansatz, result = best
    synth = ansatz.get_unitary(result.params)
    rng = np.random.default_rng(0)
    worst = 1.0
    for _ in range(5):
        amps = rng.normal(size=4) + 1j * rng.normal(size=4)
        amps /= np.linalg.norm(amps)
        sv = Statevector.from_amplitudes(amps, [2, 2])
        f = sv.apply_unitary(target).fidelity(sv.apply_unitary(synth))
        worst = min(worst, f)
    print(f"\nworst state fidelity over 5 random inputs: {worst:.9f}")
    print("resynthesis complete: QFT-2 expressed in U3+CNOT.")


if __name__ == "__main__":
    main()
