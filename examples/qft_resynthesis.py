#!/usr/bin/env python
"""Resynthesis: compress a QFT block into the native U3+CNOT gate set.

This is the compiler workload OpenQudit accelerates (section II-B):
the synthesis search hands the instantiation engine a target unitary
(here the 2-qubit QFT) and candidate ansatz templates in the
hardware's native gate set; the engine finds parameters reproducing
the target to machine precision.  Where this example used to hand-roll
a "try deeper ansatz until it fits" loop (and crashed with an
UnboundLocalError when no depth fit), it now drives the
`repro.synthesis` subsystem: `SynthesisSearch` explores templates
depth by depth with pooled, batched engines, and `Resynthesizer` then
compresses the hand-rolled deep ansatz by gate deletion +
re-instantiation.

Run:  python examples/qft_resynthesis.py
"""

import numpy as np

from repro import Instantiater, Resynthesizer, SynthesisSearch
from repro.circuit import build_qft_circuit, build_qsearch_ansatz
from repro.utils import Statevector


def main() -> None:
    # The target: a 2-qubit QFT (H, controlled-phase, swap).
    qft = build_qft_circuit(2)
    target = qft.get_unitary(())
    print(f"target: QFT-2, {len(qft)} gates "
          f"({', '.join(f'{k}x{v}' for k, v in qft.gate_counts().items())})")

    # Search bottom-up over U3 + CNOT templates; every candidate's
    # 8 starts run through one batched engine sweep, and template
    # shapes reuse pooled AOT compiles.
    search = SynthesisSearch(heuristic="dijkstra", starts=8)
    result = search.synthesize(target, rng=3)
    status = "FOUND" if result.success else "no solution"
    print(f"search: {result.count('CX')} CNOTs, "
          f"{result.circuit.num_operations} gates, "
          f"infidelity {result.infidelity:.2e} -> {status} "
          f"({result.instantiation_calls} instantiation calls, "
          f"{result.engine_cache_hits} engine-cache hits, "
          f"{result.wall_seconds:.2f}s)")
    if not result.success:
        print("search exhausted its budget without a fit; "
              "raise max_layers/max_expansions and retry.")
        return

    # The old hand-rolled loop's endpoint: a depth-3 ansatz that fits.
    # Resynthesizer deletes gates while re-instantiation still reaches
    # the target, compressing it to (at most) the search's gate count.
    ansatz = build_qsearch_ansatz(2, 3, 2)
    fit = Instantiater(ansatz, strategy="auto").instantiate(
        target, starts=8, rng=3
    )
    print(f"\nhand-rolled depth-3 ansatz: "
          f"{ansatz.gate_counts().get('CX', 0)} CNOTs, "
          f"{ansatz.num_operations} gates, "
          f"infidelity {fit.infidelity:.2e} "
          f"({fit.starts_used} starts)")
    compressed = Resynthesizer(starts=8).resynthesize(
        ansatz, fit.params, rng=3
    )
    print(f"resynthesized:              "
          f"{compressed.count('CX')} CNOTs, "
          f"{compressed.circuit.num_operations} gates, "
          f"infidelity {compressed.infidelity:.2e} "
          f"({compressed.instantiation_calls} instantiation calls)")

    # Verify the synthesized circuit behaves like the QFT on states.
    synth = result.circuit.get_unitary(result.params)
    rng = np.random.default_rng(0)
    worst = 1.0
    for _ in range(5):
        amps = rng.normal(size=4) + 1j * rng.normal(size=4)
        amps /= np.linalg.norm(amps)
        sv = Statevector.from_amplitudes(amps, [2, 2])
        f = sv.apply_unitary(target).fidelity(sv.apply_unitary(synth))
        worst = min(worst, f)
    print(f"\nworst state fidelity over 5 random inputs: {worst:.9f}")
    print("resynthesis complete: QFT-2 expressed in U3+CNOT.")


if __name__ == "__main__":
    main()
