#!/usr/bin/env python
"""State preparation: synthesize a circuit that prepares a target state.

Instead of fitting the circuit's full unitary to a ``(D, D)`` target
(Eq. 1), a state-preparation fit drives ``U(theta)|0...0>`` — the first
column of the unitary — toward a target :class:`~repro.utils.Statevector`,
with ``O(D)`` residuals per candidate instead of ``O(D^2)``.  The same
search, engine pool, and batched multi-start machinery serve both
target types: engines are keyed by circuit structure, so a pool warmed
on unitary targets serves state targets with zero extra compiles.

Run:  python examples/state_prep.py
"""

import numpy as np

from repro.synthesis import Resynthesizer, SynthesisSearch
from repro.utils import Statevector


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Synthesize a 3-qubit GHZ preparation circuit.
    # ------------------------------------------------------------------
    ghz = Statevector.ghz(3)
    search = SynthesisSearch()  # U3+CNOT gate set, auto-batched engines
    result = search.synthesize(ghz, rng=7)  # radices come from the state
    print(f"GHZ-3: solved={result.success} with "
          f"{result.circuit.num_operations} gates "
          f"({result.count('CX')} CX), infidelity {result.infidelity:.2e}, "
          f"{result.instantiation_calls} instantiation calls")

    # Check it end to end with the state-vector simulator.
    prepared = Statevector(ghz.radices).apply_unitary(
        result.circuit.get_unitary(result.params)
    )
    print(f"fidelity |<GHZ|U|0>|^2 = {ghz.fidelity(prepared):.12f}")
    with np.printoptions(precision=3, suppress=True):
        print(f"prepared probabilities: {prepared.probabilities()}")

    # ------------------------------------------------------------------
    # 2. A random 2-qubit state, from raw (even f32) amplitudes.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    amps = (rng.normal(size=4) + 1j * rng.normal(size=4)).astype(np.complex64)
    amps /= np.linalg.norm(amps)  # normalized *in f32*
    random_state = Statevector.from_amplitudes(
        amps, [2, 2], normalize=True
    )
    result2 = search.synthesize(random_state, rng=1)  # same engine pool
    print(f"\nrandom 2q state: solved={result2.success} with "
          f"{result2.count('CX')} CX (generic 2-qubit states need 1), "
          f"infidelity {result2.infidelity:.2e}")

    # ------------------------------------------------------------------
    # 3. Compress a prep circuit: deletions only have to preserve the
    #    prepared state, not the whole unitary, so more gates fall out.
    # ------------------------------------------------------------------
    compressed = Resynthesizer(pool=search.pool).resynthesize(
        result.circuit, result.params, target=ghz, rng=2
    )
    print(f"\ncompression against the state target: "
          f"{result.circuit.num_operations} -> "
          f"{compressed.circuit.num_operations} gates, "
          f"still solved={compressed.success}")
    search.close()


if __name__ == "__main__":
    main()
