#!/usr/bin/env python
"""Quickstart: define a gate in QGL, build a PQC, and evaluate it fast.

This walks the paper's core workflow end to end:

1. define gate semantics once, as a symbolic QGL expression
   (Listing 2) — no unitary code, no hand-derived gradient;
2. build a parameterized circuit with cached expressions (Listing 4);
3. AOT-compile the circuit to tensor-network bytecode and run the
   TNVM evaluation loop (Listing 3).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Differentiation,
    QuditCircuit,
    TNVM,
    UnitaryExpression,
    compile_network,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Define gates in QGL's mathematically natural syntax.
    # ------------------------------------------------------------------
    u3 = UnitaryExpression(
        """U3(θ, ϕ, λ) {
            [[cos(θ/2), ~e^(i*λ)*sin(θ/2)],
             [e^(i*ϕ)*sin(θ/2), e^(i*(ϕ+λ))*cos(θ/2)]]
        }"""
    )
    cnot = UnitaryExpression(
        """CNOT() {
            [[1, 0, 0, 0],
             [0, 1, 0, 0],
             [0, 0, 0, 1],
             [0, 0, 1, 0]]
        }"""
    )
    print(f"defined {u3.name}: {u3.num_params} params on "
          f"{u3.num_qudits} qubit(s)")

    # ------------------------------------------------------------------
    # 2. Build a two-qubit PQC; cache expressions, append by reference.
    # ------------------------------------------------------------------
    circ = QuditCircuit.pure([2, 2])
    u3_ref = circ.cache_operation(u3)
    cx_ref = circ.cache_operation(cnot)
    circ.append_ref(u3_ref, 0)
    circ.append_ref(u3_ref, 1)
    circ.append_ref_constant(cx_ref, (0, 1))
    circ.append_ref(u3_ref, 0)
    circ.append_ref(u3_ref, 1)
    print(f"built circuit: {len(circ)} gates, {circ.num_params} "
          f"parameters, depth {circ.depth()}")

    # ------------------------------------------------------------------
    # 3. AOT-compile once, then evaluate repeatedly through the TNVM.
    # ------------------------------------------------------------------
    network = circ.to_tensor_network()
    code = compile_network(network)
    print("\nbytecode:")
    print(code.disassemble())

    vm = TNVM(code, precision="f64", diff=Differentiation.GRADIENT)
    print(f"\nTNVM ready: {vm.memory_bytes} bytes preallocated")

    rng = np.random.default_rng(0)
    params = rng.uniform(-np.pi, np.pi, circ.num_params)
    unitary, grad = vm.evaluate_with_grad(tuple(params))
    # evaluate() returns views into the VM arena; snapshot before the
    # next call overwrites them.
    unitary, grad = unitary.copy(), grad.copy()
    print(f"\ncircuit unitary ({unitary.shape[0]}x{unitary.shape[1]}):")
    with np.printoptions(precision=3, suppress=True):
        print(unitary)
    print(f"gradient tensor shape: {grad.shape}")

    # The result is unitary, and the gradient matches finite differences.
    assert np.allclose(
        unitary @ unitary.conj().T, np.eye(4), atol=1e-10
    )
    eps = 1e-7
    bumped = params.copy()
    bumped[0] += eps
    fd = (vm.evaluate(tuple(bumped)) - unitary) / eps
    print("\ngradient[0] matches finite differences:",
          np.allclose(grad[0], fd, atol=1e-4))


if __name__ == "__main__":
    main()
