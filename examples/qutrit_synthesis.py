#!/usr/bin/env python
"""Qudit workflow: synthesize qutrit circuits (the paper's Figure 5
qutrit benchmarks, and the reason the framework is called OpenQudit).

Traditional compilers are hard to extend to qudits because the
analytical gradients grow hairy with dimension (section II-C).  In QGL
a qutrit gate is declared with ``<3>`` radices and everything else —
differentiation, simplification, JIT, tensor-network compilation with
dimension-3 wires, instantiation — follows automatically.

Run:  python examples/qutrit_synthesis.py
"""

import numpy as np

from repro import Instantiater, QuditCircuit, UnitaryExpression, gates
from repro.utils import Statevector


def build_qutrit_ansatz(n: int, blocks: int) -> QuditCircuit:
    """CSUM + single-qutrit rotations, mirroring the Figure 5 qutrit
    circuits but with embedded-U3 rotations for full expressivity."""
    circ = QuditCircuit.qutrits(n)
    r01 = circ.cache_operation(gates.embedded_u3(3, 0, 1))
    r12 = circ.cache_operation(gates.embedded_u3(3, 1, 2))
    csum = circ.cache_operation(gates.csum(3))
    for q in range(n):
        circ.append_ref(r01, q)
        circ.append_ref(r12, q)
    pairs = [(q, q + 1) for q in range(n - 1)]
    for b in range(blocks):
        a, c = pairs[b % len(pairs)]
        circ.append_ref(csum, (a, c))
        for q in (a, c):
            circ.append_ref(r01, q)
            circ.append_ref(r12, q)
    return circ


def main() -> None:
    # A custom qutrit gate straight from QGL: note the <3> radix.
    chrestenson_like = UnitaryExpression(
        """CH3<3>() {
            (1/sqrt(3)) * [[1, 1, 1],
                           [1, e^(i*2*pi/3), e^(~i*2*pi/3)],
                           [1, e^(~i*2*pi/3), e^(i*2*pi/3)]]
        }"""
    )
    print(f"defined {chrestenson_like.name} on radices "
          f"{chrestenson_like.radices}")

    # Target: a small qutrit program using that gate plus CSUM.
    prog = QuditCircuit.qutrits(2)
    ch = prog.cache_operation(chrestenson_like)
    cs = prog.cache_operation(gates.csum(3))
    p3 = prog.cache_operation(gates.qutrit_phase())
    prog.append_ref(ch, 0)
    prog.append_ref_constant(cs, (0, 1))
    prog.append_ref_constant(p3, 1, (0.7, -0.4))
    target = prog.get_unitary(())
    print(f"target program: {len(prog)} gates over 2 qutrits "
          f"(dim {prog.dim})")

    # Resynthesize it into the CSUM + embedded-U3 gate set.
    ansatz = build_qutrit_ansatz(2, blocks=3)
    print(f"ansatz: {len(ansatz)} gates, {ansatz.num_params} parameters")
    engine = Instantiater(ansatz)
    result = engine.instantiate(target, starts=8, rng=7)
    print(f"instantiation: infidelity {result.infidelity:.2e}, "
          f"success {result.success}, {result.starts_used} start(s), "
          f"{result.optimize_seconds:.2f}s")

    # Behavioural check: both programs act identically on |00>.
    synth = ansatz.get_unitary(result.params)
    sv_t = Statevector([3, 3]).apply_unitary(target)
    sv_s = Statevector([3, 3]).apply_unitary(synth)
    print(f"state fidelity on |00>: {sv_t.fidelity(sv_s):.9f}")


if __name__ == "__main__":
    main()
